#include "src/holistic/lns.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>

#include "src/holistic/incremental_eval.hpp"
#include "src/model/cost.hpp"
#include "src/util/rng.hpp"
#include "src/util/timer.hpp"

namespace mbsp {

namespace {

struct OccRef {
  int proc = 0;
  std::size_t index = 0;
};

/// Uniformly random occurrence reference, or nullopt if the plan is empty.
/// With a node mask, the draw is made first (so RNG consumption is
/// independent of the mask) and then rejected when it lands on a frozen
/// node — the move proposal simply fizzles, like any other infeasible
/// draw. This keeps the reference and incremental kernels bitwise-aligned
/// under masking.
std::optional<OccRef> random_occurrence(const ComputePlan& plan, Rng& rng,
                                        const std::vector<char>* mask) {
  const std::size_t total = plan.total_computes();
  if (total == 0) return std::nullopt;
  std::size_t pick = rng.index(total);
  for (int p = 0; p < plan.num_procs; ++p) {
    if (pick < plan.seq[p].size()) {
      if (mask != nullptr &&
          (*mask)[static_cast<std::size_t>(plan.seq[p][pick].node)] == 0) {
        return std::nullopt;
      }
      return OccRef{p, pick};
    }
    pick -= plan.seq[p].size();
  }
  return std::nullopt;
}

/// Insertion index range within proc q for an occurrence of superstep s.
std::pair<std::size_t, std::size_t> superstep_range(
    const std::vector<PlannedCompute>& seq, int s) {
  const auto lo = std::lower_bound(
      seq.begin(), seq.end(), s,
      [](const PlannedCompute& pc, int step) { return pc.superstep < step; });
  const auto hi = std::upper_bound(
      seq.begin(), seq.end(), s,
      [](int step, const PlannedCompute& pc) { return step < pc.superstep; });
  return {static_cast<std::size_t>(lo - seq.begin()),
          static_cast<std::size_t>(hi - seq.begin())};
}

// ---------------------------------------------------------------------------
// Copy-based move implementations: the historical search kernel, kept
// verbatim for improve_plan_reference (the differential oracle and the
// bench_lns_throughput baseline). The delta-based generators further down
// consume the RNG in exactly the same order, so both loops walk the same
// trajectory for a fixed seed.

bool move_to_other_proc(ComputePlan& plan, Rng& rng,
                        const std::vector<char>* mask) {
  if (plan.num_procs < 2) return false;
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  const PlannedCompute pc = plan.seq[ref->proc][ref->index];
  int q = static_cast<int>(rng.index(plan.num_procs - 1));
  if (q >= ref->proc) ++q;
  plan.seq[ref->proc].erase(plan.seq[ref->proc].begin() +
                            static_cast<std::ptrdiff_t>(ref->index));
  const auto [lo, hi] = superstep_range(plan.seq[q], pc.superstep);
  const std::size_t at = lo + rng.index(hi - lo + 1);
  plan.seq[q].insert(plan.seq[q].begin() + static_cast<std::ptrdiff_t>(at), pc);
  return true;
}

bool move_superstep(ComputePlan& plan, Rng& rng,
                    const std::vector<char>* mask) {
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  auto& seq = plan.seq[ref->proc];
  PlannedCompute pc = seq[ref->index];
  const int delta = rng.chance(0.5) ? 1 : -1;
  const int target = pc.superstep + delta;
  if (target < 0) return false;
  seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(ref->index));
  pc.superstep = target;
  const auto [lo, hi] = superstep_range(seq, target);
  // Moving later: insert at the front of the target block keeps local
  // topological order plausible; moving earlier: at the back.
  const std::size_t at = delta > 0 ? lo : hi;
  seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(at), pc);
  return true;
}

bool swap_between_procs(ComputePlan& plan, Rng& rng,
                        const std::vector<char>* mask) {
  if (plan.num_procs < 2) return false;
  const auto a = random_occurrence(plan, rng, mask);
  const auto b = random_occurrence(plan, rng, mask);
  if (!a || !b || a->proc == b->proc) return false;
  PlannedCompute& pa = plan.seq[a->proc][a->index];
  PlannedCompute& pb = plan.seq[b->proc][b->index];
  if (pa.superstep != pb.superstep) return false;
  std::swap(pa.node, pb.node);
  return true;
}

bool merge_supersteps(ComputePlan& plan, Rng& rng) {
  const int k = plan.num_supersteps();
  if (k < 2) return false;
  const int s = static_cast<int>(rng.index(static_cast<std::size_t>(k - 1)));
  for (auto& seq : plan.seq) {
    for (PlannedCompute& pc : seq) {
      if (pc.superstep > s) --pc.superstep;
    }
  }
  return true;
}

bool split_superstep(ComputePlan& plan, Rng& rng) {
  const int k = plan.num_supersteps();
  if (k == 0) return false;
  const int s = static_cast<int>(rng.index(static_cast<std::size_t>(k)));
  bool any = false;
  for (auto& seq : plan.seq) {
    const auto [lo, hi] = superstep_range(seq, s);
    // Random split point inside the block (may keep everything in s).
    const std::size_t cut = lo + rng.index(hi - lo + 1);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      if (seq[i].superstep > s || (seq[i].superstep == s && i >= cut)) {
        ++seq[i].superstep;
        any = true;
      }
    }
  }
  return any;
}

bool add_recompute(const ComputeDag& dag, ComputePlan& plan, Rng& rng,
                   const std::vector<char>* mask) {
  // Pick a random occurrence with a non-source parent not computed locally
  // beforehand; insert a recomputation of that parent right before it.
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  auto& seq = plan.seq[ref->proc];
  const PlannedCompute pc = seq[ref->index];
  std::vector<NodeId> candidates;
  for (NodeId u : dag.parents(pc.node)) {
    if (dag.is_source(u)) continue;
    if (mask != nullptr && (*mask)[static_cast<std::size_t>(u)] == 0) continue;
    bool local_before = false;
    for (std::size_t i = 0; i < ref->index; ++i) {
      if (seq[i].node == u) {
        local_before = true;
        break;
      }
    }
    if (!local_before) candidates.push_back(u);
  }
  if (candidates.empty()) return false;
  const NodeId u = candidates[rng.index(candidates.size())];
  seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(ref->index),
             {u, pc.superstep});
  return true;
}

bool remove_occurrence(const ComputeDag& dag, ComputePlan& plan, Rng& rng,
                       const std::vector<char>* mask) {
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  const NodeId v = plan.seq[ref->proc][ref->index].node;
  std::size_t copies = 0;
  for (const auto& seq : plan.seq) {
    for (const PlannedCompute& pc : seq) {
      if (pc.node == v) ++copies;
    }
  }
  (void)dag;
  if (copies < 2) return false;
  auto& seq = plan.seq[ref->proc];
  seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(ref->index));
  return true;
}

// ---------------------------------------------------------------------------
// Delta-based move generators: identical semantics and RNG consumption as
// the copy-based kernels above, but expressed as reversible PlanDeltaOps
// applied through the IncrementalEvaluator. Each returns false only
// before applying any op.

PlanDeltaOp make_insert(int proc, std::size_t pos, PlannedCompute pc) {
  PlanDeltaOp op;
  op.kind = PlanDeltaOpKind::kInsert;
  op.proc = proc;
  op.pos = pos;
  op.pc = pc;
  return op;
}

PlanDeltaOp make_erase(int proc, std::size_t pos, PlannedCompute pc) {
  PlanDeltaOp op;
  op.kind = PlanDeltaOpKind::kErase;
  op.proc = proc;
  op.pos = pos;
  op.pc = pc;
  return op;
}

bool gen_move_proc(IncrementalEvaluator& ev, Rng& rng,
                   const std::vector<char>* mask) {
  const ComputePlan& plan = ev.plan();
  if (plan.num_procs < 2) return false;
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  const PlannedCompute pc = plan.seq[ref->proc][ref->index];
  int q = static_cast<int>(rng.index(plan.num_procs - 1));
  if (q >= ref->proc) ++q;
  ev.apply_op(make_erase(ref->proc, ref->index, pc));
  const auto [lo, hi] = superstep_range(plan.seq[q], pc.superstep);
  const std::size_t at = lo + rng.index(hi - lo + 1);
  ev.apply_op(make_insert(q, at, pc));
  return true;
}

bool gen_move_superstep(IncrementalEvaluator& ev, Rng& rng,
                        const std::vector<char>* mask) {
  const ComputePlan& plan = ev.plan();
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  PlannedCompute pc = plan.seq[ref->proc][ref->index];
  const int delta = rng.chance(0.5) ? 1 : -1;
  const int target = pc.superstep + delta;
  if (target < 0) return false;
  ev.apply_op(make_erase(ref->proc, ref->index, pc));
  const auto [lo, hi] = superstep_range(plan.seq[ref->proc], target);
  pc.superstep = target;
  const std::size_t at = delta > 0 ? lo : hi;
  ev.apply_op(make_insert(ref->proc, at, pc));
  return true;
}

bool gen_swap_between_procs(IncrementalEvaluator& ev, Rng& rng,
                            const std::vector<char>* mask) {
  const ComputePlan& plan = ev.plan();
  if (plan.num_procs < 2) return false;
  const auto a = random_occurrence(plan, rng, mask);
  const auto b = random_occurrence(plan, rng, mask);
  if (!a || !b || a->proc == b->proc) return false;
  const PlannedCompute pa = plan.seq[a->proc][a->index];
  const PlannedCompute pb = plan.seq[b->proc][b->index];
  if (pa.superstep != pb.superstep) return false;
  PlanDeltaOp op;
  op.kind = PlanDeltaOpKind::kSetNode;
  op.proc = a->proc;
  op.pos = a->index;
  op.old_node = pa.node;
  op.pc = {pb.node, pa.superstep};
  ev.apply_op(op);
  op.proc = b->proc;
  op.pos = b->index;
  op.old_node = pb.node;
  op.pc = {pa.node, pb.superstep};
  ev.apply_op(op);
  return true;
}

bool gen_merge_supersteps(IncrementalEvaluator& ev, Rng& rng) {
  const ComputePlan& plan = ev.plan();
  const int k = plan.num_supersteps();
  if (k < 2) return false;
  const int s = static_cast<int>(rng.index(static_cast<std::size_t>(k - 1)));
  // Pooled op: its cuts vector keeps capacity across proposals, so
  // structural moves stay allocation-free in steady state.
  PlanDeltaOp& op = ev.scratch_op();
  op.kind = PlanDeltaOpKind::kMergeStep;
  op.pc = PlannedCompute{};
  op.pc.superstep = s;
  op.cuts.resize(static_cast<std::size_t>(plan.num_procs));
  for (int p = 0; p < plan.num_procs; ++p) {
    op.cuts[static_cast<std::size_t>(p)] =
        superstep_range(plan.seq[p], s).second;
  }
  ev.apply_op(op);
  return true;
}

bool gen_split_superstep(IncrementalEvaluator& ev, Rng& rng) {
  const ComputePlan& plan = ev.plan();
  const int k = plan.num_supersteps();
  if (k == 0) return false;
  const int s = static_cast<int>(rng.index(static_cast<std::size_t>(k)));
  PlanDeltaOp& op = ev.scratch_op();
  op.kind = PlanDeltaOpKind::kSplitStep;
  op.pc = PlannedCompute{};
  op.pc.superstep = s;
  op.cuts.resize(static_cast<std::size_t>(plan.num_procs));
  bool any = false;
  for (int p = 0; p < plan.num_procs; ++p) {
    const auto& seq = plan.seq[p];
    const auto [lo, hi] = superstep_range(seq, s);
    const std::size_t cut = lo + rng.index(hi - lo + 1);
    op.cuts[static_cast<std::size_t>(p)] = cut;
    if (cut < seq.size()) any = true;
  }
  if (!any) return false;
  ev.apply_op(op);
  return true;
}

bool gen_add_recompute(const ComputeDag& dag, IncrementalEvaluator& ev,
                       Rng& rng, const std::vector<char>* mask) {
  const ComputePlan& plan = ev.plan();
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  const PlannedCompute pc = plan.seq[ref->proc][ref->index];
  std::vector<NodeId> candidates;
  for (NodeId u : dag.parents(pc.node)) {
    if (dag.is_source(u)) continue;
    if (mask != nullptr && (*mask)[static_cast<std::size_t>(u)] == 0) continue;
    if (!ev.index().has_local_comp_before(ref->proc, u, ref->index)) {
      candidates.push_back(u);
    }
  }
  if (candidates.empty()) return false;
  const NodeId u = candidates[rng.index(candidates.size())];
  ev.apply_op(make_insert(ref->proc, ref->index, {u, pc.superstep}));
  return true;
}

bool gen_remove_occurrence(IncrementalEvaluator& ev, Rng& rng,
                           const std::vector<char>* mask) {
  const ComputePlan& plan = ev.plan();
  const auto ref = random_occurrence(plan, rng, mask);
  if (!ref) return false;
  const PlannedCompute pc = plan.seq[ref->proc][ref->index];
  if (ev.index().node_count(pc.node) < 2) return false;
  ev.apply_op(make_erase(ref->proc, ref->index, pc));
  return true;
}

int move_class_index(unsigned move) {
  int index = 0;
  while ((move >> index) != 1u) ++index;
  return index;
}

}  // namespace

const char* lns_move_class_name(int index) {
  static const char* kNames[kNumMoveClasses] = {
      "proc", "step", "swap", "merge", "split", "recompute", "drop"};
  return index >= 0 && index < kNumMoveClasses ? kNames[index] : "?";
}

bool parse_move_mask(const std::string& spec, unsigned* mask,
                     std::string* unknown) {
  unsigned out = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string name = spec.substr(start, end - start);
    if (name == "all") {
      out |= kAllMoves;
    } else if (name == "none" || name.empty()) {
      // no-op
    } else {
      bool found = false;
      for (int i = 0; i < kNumMoveClasses; ++i) {
        if (name == lns_move_class_name(i)) {
          out |= 1u << i;
          found = true;
          break;
        }
      }
      if (!found) {
        if (unknown != nullptr) *unknown = name;
        return false;
      }
    }
    if (end == spec.size()) break;
    start = end + 1;
  }
  *mask = out;
  return true;
}

double evaluate_plan(const MbspInstance& inst, const ComputePlan& plan,
                     const LnsOptions& options, MbspSchedule* out) {
  MbspSchedule schedule =
      complete_memory(inst, plan, options.completion_policy);
  const double cost = options.cost == CostModel::kSynchronous
                          ? sync_cost(inst, schedule)
                          : async_cost(inst, schedule);
  if (out != nullptr) *out = std::move(schedule);
  return cost;
}

namespace {

/// Enabled move classes under `options` (ablations can disable any
/// subset; recompute moves additionally require allow_recompute).
std::vector<unsigned> enabled_moves(const LnsOptions& options) {
  std::vector<unsigned> moves;
  for (unsigned m : {kMoveProc, kMoveSuperstep, kSwapProcs, kMergeSupersteps,
                     kSplitSuperstep, kAddRecompute, kRemoveOccurrence}) {
    const bool recompute_move = m == kAddRecompute || m == kRemoveOccurrence;
    if ((options.move_mask & m) != 0 &&
        (!recompute_move || options.allow_recompute)) {
      moves.push_back(m);
    }
  }
  return moves;
}

}  // namespace

LnsResult improve_plan_reference(const MbspInstance& inst,
                                 const ComputePlan& initial,
                                 const LnsOptions& options) {
  LnsResult result;
  result.plan = initial;
  result.initial_cost = evaluate_plan(inst, initial, options, &result.schedule);
  result.cost = result.initial_cost;

  ComputePlan current = initial;
  double current_cost = result.initial_cost;

  Rng rng(options.seed);
  Deadline deadline(options.budget_ms);
  double temperature =
      std::max(1e-9, options.initial_temperature_frac * result.initial_cost);
  const double cooling = 0.9995;

  const std::vector<unsigned> moves = enabled_moves(options);
  if (moves.empty()) return result;

  while (result.iterations < options.max_iterations && !deadline.expired()) {
    ++result.iterations;
    ComputePlan candidate = current;
    const unsigned move = moves[rng.index(moves.size())];
    const int class_index = move_class_index(move);
    ++result.proposed_by_class[class_index];
    bool changed = false;
    switch (move) {
      case kMoveProc:
        changed = move_to_other_proc(candidate, rng, options.node_mask);
        break;
      case kMoveSuperstep:
        changed = move_superstep(candidate, rng, options.node_mask);
        break;
      case kSwapProcs:
        changed = swap_between_procs(candidate, rng, options.node_mask);
        break;
      case kMergeSupersteps: changed = merge_supersteps(candidate, rng); break;
      case kSplitSuperstep: changed = split_superstep(candidate, rng); break;
      case kAddRecompute:
        changed = add_recompute(inst.dag, candidate, rng, options.node_mask);
        break;
      case kRemoveOccurrence:
        changed =
            remove_occurrence(inst.dag, candidate, rng, options.node_mask);
        break;
    }
    if (!changed) continue;
    normalize_supersteps(candidate);
    if (!validate_plan(inst.dag, candidate)) continue;
    const double cost = evaluate_plan(inst, candidate, options);
    const double delta = cost - current_cost;
    const bool accept =
        delta <= 0 || rng.uniform01() < std::exp(-delta / temperature);
    temperature = std::max(1e-9, temperature * cooling);
    if (!accept) continue;
    ++result.accepted;
    ++result.accepted_by_class[class_index];
    current = std::move(candidate);
    current_cost = cost;
    if (cost < result.cost) {
      result.cost = cost;
      result.plan = current;
    }
  }
  // Re-derive the best schedule (plan is stored; completion deterministic).
  result.cost = evaluate_plan(inst, result.plan, options, &result.schedule);
  return result;
}

LnsResult improve_plan(const MbspInstance& inst, const ComputePlan& initial,
                       const LnsOptions& options) {
  // The incremental engine maintains dense superstep indices as an
  // invariant; a gappy warm start would change move semantics, so it runs
  // on the historical loop (whose per-candidate normalization tolerates
  // gaps) to preserve behavior exactly.
  if (!has_dense_supersteps(initial)) {
    return improve_plan_reference(inst, initial, options);
  }

  LnsResult result;
  result.plan = initial;

  // attach() is bitwise-equal to evaluate_plan on the same plan (the
  // engine's oracle invariant), so the warm start needs no separate full
  // completion; the best schedule is derived once at exit.
  IncrementalEvaluator eval(inst, options);
  result.initial_cost = eval.attach(initial);
  result.cost = result.initial_cost;

  double current_cost = result.initial_cost;

  Rng rng(options.seed);
  Deadline deadline(options.budget_ms);
  double temperature =
      std::max(1e-9, options.initial_temperature_frac * result.initial_cost);
  const double cooling = 0.9995;

  const std::vector<unsigned> moves = enabled_moves(options);
  if (moves.empty()) {
    result.cost = evaluate_plan(inst, result.plan, options, &result.schedule);
    return result;
  }

  // The deadline poll leaves the hot loop: the clock is only read every
  // deadline_poll_interval iterations (rounded down to a power of two, so
  // the check stays a mask test; iteration counts per poll window are
  // deterministic). Every configuration costs moves in O(dirty rounds)
  // through the incremental engine, so a whole batch cannot overshoot the
  // budget by more than a sliver of work.
  const long poll_mask =
      static_cast<long>(std::bit_floor(static_cast<unsigned long>(
          std::max(1L, options.deadline_poll_interval)))) -
      1;
  while (result.iterations < options.max_iterations &&
         ((result.iterations & poll_mask) != 0 || !deadline.expired())) {
    ++result.iterations;
    const unsigned move = moves[rng.index(moves.size())];
    const int class_index = move_class_index(move);
    ++result.proposed_by_class[class_index];
    eval.begin_move();
    bool changed = false;
    switch (move) {
      case kMoveProc:
        changed = gen_move_proc(eval, rng, options.node_mask);
        break;
      case kMoveSuperstep:
        changed = gen_move_superstep(eval, rng, options.node_mask);
        break;
      case kSwapProcs:
        changed = gen_swap_between_procs(eval, rng, options.node_mask);
        break;
      case kMergeSupersteps: changed = gen_merge_supersteps(eval, rng); break;
      case kSplitSuperstep: changed = gen_split_superstep(eval, rng); break;
      case kAddRecompute:
        changed = gen_add_recompute(inst.dag, eval, rng, options.node_mask);
        break;
      case kRemoveOccurrence:
        changed = gen_remove_occurrence(eval, rng, options.node_mask);
        break;
    }
    if (!changed) {
      eval.rollback();  // no ops applied; resets the move transaction
      continue;
    }
    const IncrementalEvaluator::Outcome out = eval.finish_move();
    if (!out.valid) {
      eval.rollback();
      continue;
    }
    const double cost = out.cost;
    const double delta = cost - current_cost;
    const bool accept =
        delta <= 0 || rng.uniform01() < std::exp(-delta / temperature);
    temperature = std::max(1e-9, temperature * cooling);
    if (!accept) {
      eval.rollback();
      continue;
    }
    ++result.accepted;
    ++result.accepted_by_class[class_index];
    eval.commit();
    current_cost = cost;
    if (cost < result.cost) {
      result.cost = cost;
      result.plan = eval.plan();
    }
  }
  // Re-derive the best schedule (plan is stored; completion deterministic).
  result.cost = evaluate_plan(inst, result.plan, options, &result.schedule);
  return result;
}

}  // namespace mbsp
