#pragma once
// The full ILP representation of MBSP scheduling (Section 6.1, Appendix C):
// binary variables compute/save/load (p, v, t) and hasred (p, v, t),
// hasblue (v, t), the fundamental constraints of Figure 3, and either the
// asynchronous makespan objective (finishtime / getsblue / makespan) or the
// synchronous superstep objective (phase typing + compuntil / compinduced
// accumulators). Recomputation can be prohibited with one extra constraint
// family, as in the paper's ablation.
//
// One deliberate strengthening over the paper's Figure 3: a COMPUTE places
// the output's red pebble while the parents are still red, so we add
//   sum_w mu(w) hasred[p,w,t] + mu(v) (compute[p,v,t] - hasred[p,v,t]) <= r
// which the time-discretized constraint (7) alone does not imply; without
// it, extracted schedules could transiently exceed the memory bound.
//
// These exact models are solvable by the in-house branch-and-bound only at
// small sizes (tiny DAGs, small T); the LNS scheduler covers the rest —
// see DESIGN.md.

#include <vector>

#include "src/ilp/model.hpp"
#include "src/model/schedule.hpp"
#include "src/model/validate.hpp"

namespace mbsp {

enum class CostModel { kSynchronous, kAsynchronous };

struct FormulationOptions {
  int num_steps = 8;  ///< T, the number of discrete time steps
  CostModel cost = CostModel::kSynchronous;
  bool allow_recompute = true;
  /// Section 6.2 step merging: a step may hold several COMPUTEs on one
  /// processor (all inputs and outputs fitting in cache simultaneously,
  /// local dependencies allowed within the step) or several save/load
  /// operations. Drastically reduces the T needed. Supported for the
  /// asynchronous cost model; encode_schedule() does not support it.
  bool merge_steps = false;
};

/// Builds the ILP and remembers the variable layout for extraction.
class IlpFormulation {
 public:
  IlpFormulation(const MbspInstance& inst, FormulationOptions options);

  const ilp::Model& model() const { return model_; }
  ilp::Model& mutable_model() { return model_; }
  const FormulationOptions& options() const { return options_; }

  /// Variable accessors (kInvalidVar when the variable was elided, e.g.
  /// compute of a source node).
  static constexpr ilp::VarId kInvalidVar = -1;
  ilp::VarId compute_var(int p, NodeId v, int t) const;
  ilp::VarId save_var(int p, NodeId v, int t) const;
  ilp::VarId load_var(int p, NodeId v, int t) const;
  ilp::VarId hasred_var(int p, NodeId v, int t) const;
  ilp::VarId hasblue_var(NodeId v, int t) const;

  /// Turns an integral ILP solution into a valid MBSP schedule (supersteps
  /// grouped from phase runs in the synchronous model, one superstep per
  /// time step in the asynchronous model).
  MbspSchedule extract_schedule(const std::vector<double>& x) const;

  /// Number of ILP time steps needed to encode `sched` (compute / save /
  /// load blocks per superstep; deletes are implicit transitions).
  static int steps_required(const MbspSchedule& sched);

  /// Encodes a valid MBSP schedule as a variable assignment — the paper's
  /// warm start ("we initialize the solvers with our baseline"). Returns
  /// an empty vector if the schedule does not fit in T steps. The encoding
  /// satisfies every constraint and its objective equals the schedule's
  /// sync/async cost (tests assert this on the full dataset).
  std::vector<double> encode_schedule(const MbspSchedule& sched) const;

 private:
  void build();
  void build_sync_cost();
  void build_async_cost();

  /// Auxiliary variables of one phase kind in the synchronous objective.
  struct PhaseAux {
    std::vector<ilp::VarId> begins, ends, induced;  // per t
    std::vector<ilp::VarId> until;                  // [p * T + t]
  };

  const MbspInstance& inst_;
  FormulationOptions options_;
  ilp::Model model_;
  int P_ = 0, T_ = 0;
  NodeId n_ = 0;
  double big_m_ = 0;
  // Layout tables indexed [((p * n) + v) * T + t] etc.
  std::vector<ilp::VarId> compute_, save_, load_, hasred_;
  std::vector<ilp::VarId> hasblue_;
  std::vector<ilp::VarId> compphase_, savephase_, loadphase_;  // per t (sync)
  PhaseAux comp_aux_, save_aux_, load_aux_;                    // sync
  ilp::VarId first_ss_ = -1;                                   // sync, L > 0
  std::vector<ilp::VarId> started_, ssbeg_, ioss_;             // sync, L > 0
  std::vector<ilp::VarId> finish_;                             // async [p*T+t]
  std::vector<ilp::VarId> getsblue_;                           // async per v
  ilp::VarId makespan_ = -1;                                   // async
  std::vector<int> topo_pos_;  // topological position per node
};

}  // namespace mbsp
