#pragma once
// Acyclic bipartitioning (Section 6.3 step 1): split a DAG into two parts
// such that the quotient is acyclic — for two parts this means no edge may
// go from part 1 back to part 0, i.e. part 0 is closed under predecessors —
// while minimizing the number of cut edges under a balance constraint
// (each side gets at least `min_fraction` of the nodes).
//
// Two engines, matching the paper: an exact ILP (solved by the in-house
// branch and bound; the paper notes COPT solves these "in negligible
// time") and a greedy topological-prefix heuristic with FM-style move
// refinement, which also provides the ILP warm start and the fallback when
// the B&B hits its budget.

#include <cstdint>
#include <vector>

#include "src/graph/dag.hpp"
#include "src/ilp/model.hpp"

namespace mbsp {

struct BipartitionOptions {
  double min_fraction = 1.0 / 3.0;  ///< min share of nodes per side
  double ilp_budget_ms = 1000;
  bool use_ilp = true;
  std::uint64_t seed = 11;
};

struct BipartitionResult {
  std::vector<int> part;  ///< node -> {0, 1}
  std::size_t cut = 0;
  bool proven_optimal = false;
};

/// Builds the exact ILP: binaries part[v] with part[u] <= part[v] per edge,
/// cut indicators y_e >= part[v] - part[u], balance lo <= sum part <= hi.
ilp::Model build_bipartition_ilp(const ComputeDag& dag, int lo_ones,
                                 int hi_ones);

/// Greedy heuristic: best balanced topological-prefix cut over randomized
/// orders, refined by single-node moves that keep the down-set property.
BipartitionResult greedy_bipartition(const ComputeDag& dag,
                                     const BipartitionOptions& options);

/// Full pipeline (greedy warm start, then ILP when enabled).
BipartitionResult acyclic_bipartition(const ComputeDag& dag,
                                      const BipartitionOptions& options = {});

/// Recursively bipartitions until every part has at most `max_part_size`
/// nodes; returns parts in a topological order of the quotient graph.
std::vector<std::vector<NodeId>> recursive_acyclic_partition(
    const ComputeDag& dag, int max_part_size,
    const BipartitionOptions& options = {});

}  // namespace mbsp
