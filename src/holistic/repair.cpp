#include "src/holistic/repair.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>

#include "src/graph/dag_io.hpp"
#include "src/graph/topology.hpp"
#include "src/holistic/portfolio.hpp"
#include "src/twostage/two_stage.hpp"

namespace mbsp {

namespace {

std::string format_edge(NodeId u, NodeId v) {
  return std::to_string(u) + "->" + std::to_string(v);
}

void set_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
}

/// True iff u is reachable from v over children — i.e. adding u -> v
/// would close a cycle. BFS over the (current) successor spans.
bool reachable(const ComputeDag& dag, NodeId v, NodeId u) {
  if (v == u) return true;
  std::vector<char> seen(static_cast<std::size_t>(dag.num_nodes()), 0);
  std::deque<NodeId> frontier{v};
  seen[static_cast<std::size_t>(v)] = 1;
  while (!frontier.empty()) {
    const NodeId w = frontier.front();
    frontier.pop_front();
    for (NodeId c : dag.children(w)) {
      if (c == u) return true;
      if (!seen[static_cast<std::size_t>(c)]) {
        seen[static_cast<std::size_t>(c)] = 1;
        frontier.push_back(c);
      }
    }
  }
  return false;
}

/// %.17g like the rest of the canonical-spec machinery (machine specs,
/// scheduler cache specs): round-trips doubles exactly.
std::string num(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

void snapshot_machine(MbspInstance& inst, AppliedInstanceDelta& undo) {
  if (undo.machine_snapshot) return;
  undo.machine_before = inst.arch;
  undo.machine_snapshot = true;
}

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t x) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(x >> (8 * i));
  }
  return fnv1a_64(bytes, sizeof(bytes), h);
}

std::uint64_t hash_double(std::uint64_t h, double x) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return hash_u64(h, bits);
}

}  // namespace

const char* instance_delta_op_name(InstanceDeltaOpKind kind) {
  switch (kind) {
    case InstanceDeltaOpKind::kAddNode:
      return "add_node";
    case InstanceDeltaOpKind::kAddEdge:
      return "add_edge";
    case InstanceDeltaOpKind::kSetNodeWeight:
      return "set_node_weight";
    case InstanceDeltaOpKind::kDropProcessor:
      return "drop_processor";
    case InstanceDeltaOpKind::kShrinkMemory:
      return "shrink_memory";
  }
  return "?";
}

void InstanceDelta::add_node(double omega, double mu) {
  InstanceDeltaOp op;
  op.kind = InstanceDeltaOpKind::kAddNode;
  op.omega = omega;
  op.mu = mu;
  ops.push_back(op);
}

void InstanceDelta::add_edge(NodeId u, NodeId v) {
  InstanceDeltaOp op;
  op.kind = InstanceDeltaOpKind::kAddEdge;
  op.u = u;
  op.v = v;
  ops.push_back(op);
}

void InstanceDelta::set_node_weight(NodeId u, double omega, double mu) {
  InstanceDeltaOp op;
  op.kind = InstanceDeltaOpKind::kSetNodeWeight;
  op.u = u;
  op.omega = omega;
  op.mu = mu;
  ops.push_back(op);
}

void InstanceDelta::drop_processor(int proc) {
  InstanceDeltaOp op;
  op.kind = InstanceDeltaOpKind::kDropProcessor;
  op.proc = proc;
  ops.push_back(op);
}

void InstanceDelta::shrink_memory(int proc, double capacity) {
  InstanceDeltaOp op;
  op.kind = InstanceDeltaOpKind::kShrinkMemory;
  op.proc = proc;
  op.capacity = capacity;
  ops.push_back(op);
}

std::size_t InstanceDelta::num_added_nodes() const {
  std::size_t n = 0;
  for (const InstanceDeltaOp& op : ops) {
    if (op.kind == InstanceDeltaOpKind::kAddNode) ++n;
  }
  return n;
}

bool InstanceDelta::touches_machine() const {
  for (const InstanceDeltaOp& op : ops) {
    if (op.kind == InstanceDeltaOpKind::kDropProcessor ||
        op.kind == InstanceDeltaOpKind::kShrinkMemory) {
      return true;
    }
  }
  return false;
}

std::uint64_t instance_delta_hash(const InstanceDelta& delta,
                                  std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const InstanceDeltaOp& op : delta.ops) {
    const unsigned char kind = static_cast<unsigned char>(op.kind);
    h = fnv1a_64(&kind, 1, h);
    h = hash_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(op.u)));
    h = hash_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(op.v)));
    h = hash_double(h, op.omega);
    h = hash_double(h, op.mu);
    h = hash_u64(h,
                 static_cast<std::uint64_t>(static_cast<std::int64_t>(op.proc)));
    h = hash_double(h, op.capacity);
  }
  return h;
}

bool apply_instance_delta(MbspInstance& inst, const InstanceDelta& delta,
                          AppliedInstanceDelta* undo, std::string* error) {
  // Always build the undo record locally: a mid-delta failure rolls back
  // through it so the caller sees an unchanged instance either way.
  AppliedInstanceDelta local;
  auto fail = [&](std::string message) {
    set_error(error, std::move(message));
    undo_instance_delta(inst, local);
    return false;
  };

  for (const InstanceDeltaOp& op : delta.ops) {
    AppliedInstanceDelta::OpUndo rec;
    rec.op = op;
    switch (op.kind) {
      case InstanceDeltaOpKind::kAddNode: {
        if (op.omega < 0 || op.mu <= 0) {
          return fail("add_node rejected: weights (omega=" + num(op.omega) +
                      ", mu=" + num(op.mu) +
                      ") must satisfy omega >= 0, mu > 0");
        }
        inst.dag.add_node(op.omega, op.mu);
        break;
      }
      case InstanceDeltaOpKind::kAddEdge: {
        if (op.u < 0 || op.u >= inst.dag.num_nodes() || op.v < 0 ||
            op.v >= inst.dag.num_nodes()) {
          return fail("add_edge " + format_edge(op.u, op.v) +
                      " out of range (num_nodes=" +
                      std::to_string(inst.dag.num_nodes()) + ")");
        }
        if (op.u == op.v) {
          return fail("add_edge " + format_edge(op.u, op.v) +
                      " is a self-loop");
        }
        if (reachable(inst.dag, op.v, op.u)) {
          return fail("add_edge " + format_edge(op.u, op.v) +
                      " would create a cycle");
        }
        const std::size_t before = inst.dag.num_edges();
        inst.dag.add_edge(op.u, op.v);
        rec.edge_added = inst.dag.num_edges() != before;
        break;
      }
      case InstanceDeltaOpKind::kSetNodeWeight: {
        if (op.u < 0 || op.u >= inst.dag.num_nodes()) {
          return fail("set_node_weight: node " + std::to_string(op.u) +
                      " out of range (num_nodes=" +
                      std::to_string(inst.dag.num_nodes()) + ")");
        }
        if (op.omega < 0 || op.mu <= 0) {
          return fail("set_node_weight " + std::to_string(op.u) +
                      " rejected: weights (omega=" + num(op.omega) +
                      ", mu=" + num(op.mu) +
                      ") must satisfy omega >= 0, mu > 0");
        }
        rec.old_omega = inst.dag.omega(op.u);
        rec.old_mu = inst.dag.mu(op.u);
        inst.dag.set_omega(op.u, op.omega);
        inst.dag.set_mu(op.u, op.mu);
        break;
      }
      case InstanceDeltaOpKind::kDropProcessor: {
        Machine& m = inst.arch;
        if (op.proc < 0 || op.proc >= m.num_processors) {
          return fail("drop_processor " + std::to_string(op.proc) +
                      " out of range (P=" + std::to_string(m.num_processors) +
                      ")");
        }
        if (m.num_processors <= 1) {
          return fail("drop_processor " + std::to_string(op.proc) +
                      " rejected: cannot drop the last processor");
        }
        snapshot_machine(inst, local);
        const std::size_t p = static_cast<std::size_t>(op.proc);
        if (!m.speeds.empty()) m.speeds.erase(m.speeds.begin() + p);
        if (!m.memories.empty()) m.memories.erase(m.memories.begin() + p);
        if (!m.group_of.empty()) {
          m.group_of.erase(m.group_of.begin() + p);
          // Renumber group ids densely (num_groups() assumes max + 1),
          // preserving their relative order.
          std::vector<int> ids(m.group_of.begin(), m.group_of.end());
          std::sort(ids.begin(), ids.end());
          ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
          for (int& grp : m.group_of) {
            grp = static_cast<int>(std::lower_bound(ids.begin(), ids.end(),
                                                    grp) -
                                   ids.begin());
          }
        }
        m.num_processors -= 1;
        m.name += "#drop(" + std::to_string(op.proc) + ")";
        break;
      }
      case InstanceDeltaOpKind::kShrinkMemory: {
        Machine& m = inst.arch;
        if (op.proc < -1 || op.proc >= m.num_processors) {
          return fail("shrink_memory: processor " + std::to_string(op.proc) +
                      " out of range (P=" + std::to_string(m.num_processors) +
                      ")");
        }
        const double r0 = min_memory_r0(inst.dag);
        if (op.capacity < r0) {
          return fail("shrink_memory to " + num(op.capacity) +
                      " rejected: below the minimal feasible capacity r0=" +
                      num(r0));
        }
        snapshot_machine(inst, local);
        if (op.proc < 0) {
          m.fast_memory = op.capacity;
          for (double& cap : m.memories) cap = op.capacity;
        } else {
          if (m.memories.empty()) {
            m.memories.assign(static_cast<std::size_t>(m.num_processors),
                              m.fast_memory);
          }
          m.memories[static_cast<std::size_t>(op.proc)] = op.capacity;
        }
        m.name += "#mem(" + std::to_string(op.proc) + "," + num(op.capacity) +
                  ")";
        break;
      }
    }
    local.ops.push_back(std::move(rec));
  }
  if (undo) *undo = std::move(local);
  return true;
}

void undo_instance_delta(MbspInstance& inst,
                         const AppliedInstanceDelta& undo) {
  for (auto it = undo.ops.rbegin(); it != undo.ops.rend(); ++it) {
    const AppliedInstanceDelta::OpUndo& rec = *it;
    switch (rec.op.kind) {
      case InstanceDeltaOpKind::kAddNode:
        // Any edges on the new node were added by later ops, already
        // undone above, so the node is isolated again.
        inst.dag.remove_last_node();
        break;
      case InstanceDeltaOpKind::kAddEdge:
        if (rec.edge_added) inst.dag.remove_edge(rec.op.u, rec.op.v);
        break;
      case InstanceDeltaOpKind::kSetNodeWeight:
        inst.dag.set_omega(rec.op.u, rec.old_omega);
        inst.dag.set_mu(rec.op.u, rec.old_mu);
        break;
      case InstanceDeltaOpKind::kDropProcessor:
      case InstanceDeltaOpKind::kShrinkMemory:
        break;  // restored wholesale from the snapshot below
    }
  }
  if (undo.machine_snapshot) inst.arch = undo.machine_before;
}

namespace {

/// Sum of omega over a processor's occurrences, speed-scaled: the load
/// metric of the deterministic argmin target choice (ties -> lowest id).
double proc_load(const MbspInstance& inst, const ComputePlan& plan, int p) {
  double load = 0;
  for (const PlannedCompute& pc : plan.seq[static_cast<std::size_t>(p)]) {
    load += inst.dag.omega(pc.node);
  }
  return load / inst.arch.speed(p);
}

int argmin_load(const MbspInstance& inst, const ComputePlan& plan,
                int exclude = -1) {
  int best = -1;
  double best_load = std::numeric_limits<double>::infinity();
  for (int p = 0; p < plan.num_procs; ++p) {
    if (p == exclude) continue;
    const double load = proc_load(inst, plan, p);
    if (load < best_load) {
      best_load = load;
      best = p;
    }
  }
  return best;
}

/// Context of the structural patch: the plan being edited, its occurrence
/// index, and the touched-node set feeding the polish mask.
struct PatchContext {
  const MbspInstance* inst = nullptr;
  ComputePlan* plan = nullptr;
  PlanOccurrenceIndex* index = nullptr;
  std::vector<char>* touched = nullptr;

  void insert(int p, std::size_t pos, NodeId node, int superstep) {
    PlanDeltaOp op;
    op.kind = PlanDeltaOpKind::kInsert;
    op.proc = p;
    op.pos = pos;
    op.pc = PlannedCompute{node, superstep};
    apply_delta_op(*plan, op);
    index->on_apply(op);
    (*touched)[static_cast<std::size_t>(node)] = 1;
  }

  /// Makes node u available to the occurrence at seq[p][pos] (superstep s):
  /// free if u is a source, already computed locally before pos, or
  /// globally done in a strictly earlier superstep; otherwise inserts a
  /// local occurrence of u at superstep s right before pos — recursively
  /// ensuring u's own parents first. Returns how many occurrences were
  /// inserted at/before pos (the caller's position shift).
  std::size_t ensure(NodeId u, int p, std::size_t pos, int s) {
    if (inst->dag.is_source(u)) return 0;
    if (index->has_local_comp_before(p, u, pos)) return 0;
    const int done = index->earliest_done(u);
    if (done != -1 && done < s) return 0;
    std::size_t inserted = 0;
    for (NodeId parent : inst->dag.parents(u)) {
      inserted += ensure(parent, p, pos + inserted, s);
    }
    insert(p, pos + inserted, u, s);
    return inserted + 1;
  }
};

}  // namespace

std::optional<RepairResult> repair_plan(const MbspInstance& inst,
                                        const ComputePlan& incumbent,
                                        const InstanceDelta& delta,
                                        const RepairOptions& options,
                                        std::string* error) {
  const NodeId n = inst.dag.num_nodes();
  int drops = 0;
  for (const InstanceDeltaOp& op : delta.ops) {
    if (op.kind == InstanceDeltaOpKind::kDropProcessor) ++drops;
  }
  const int pre_procs = inst.arch.num_processors + drops;
  if (incumbent.num_procs != pre_procs) {
    set_error(error, "repair_plan: incumbent has " +
                         std::to_string(incumbent.num_procs) +
                         " processors but the delta implies " +
                         std::to_string(pre_procs) + " pre-delta processors");
    return std::nullopt;
  }
  const NodeId nodes_before =
      n - static_cast<NodeId>(delta.num_added_nodes());
  if (nodes_before < 0) {
    set_error(error, "repair_plan: delta adds more nodes than the instance "
                     "holds");
    return std::nullopt;
  }
  double min_capacity = std::numeric_limits<double>::infinity();
  for (int p = 0; p < inst.arch.num_processors; ++p) {
    min_capacity = std::min(min_capacity, inst.arch.memory(p));
  }
  if (min_capacity < min_memory_r0(inst.dag)) {
    set_error(error, "repair_plan: mutated instance infeasible (fast memory " +
                         num(min_capacity) + " below r0=" +
                         num(min_memory_r0(inst.dag)) + ")");
    return std::nullopt;
  }

  RepairResult result;
  ComputePlan& patched = result.patched;
  patched = incumbent;
  normalize_supersteps(patched);

  std::vector<char> touched(static_cast<std::size_t>(n), 0);

  // --- 1. Dropped processors: relocate each dropped sequence onto the
  // least-loaded survivor, merging by superstep so the relative order of
  // both sequences (and with it every same-processor dependency) is kept.
  // op.proc indices refer to the numbering at the op's apply time, exactly
  // as apply_instance_delta interpreted them.
  for (const InstanceDeltaOp& op : delta.ops) {
    if (op.kind != InstanceDeltaOpKind::kDropProcessor) continue;
    if (op.proc < 0 || op.proc >= patched.num_procs ||
        patched.num_procs <= 1) {
      set_error(error, "repair_plan: drop_processor " +
                           std::to_string(op.proc) +
                           " does not match the incumbent's shape");
      return std::nullopt;
    }
    const std::size_t p = static_cast<std::size_t>(op.proc);
    const int target = argmin_load(inst, patched, op.proc);
    auto& src = patched.seq[p];
    auto& dst = patched.seq[static_cast<std::size_t>(target)];
    for (const PlannedCompute& pc : src) {
      touched[static_cast<std::size_t>(pc.node)] = 1;
    }
    std::vector<PlannedCompute> merged;
    merged.reserve(src.size() + dst.size());
    std::merge(dst.begin(), dst.end(), src.begin(), src.end(),
               std::back_inserter(merged),
               [](const PlannedCompute& a, const PlannedCompute& b) {
                 return a.superstep < b.superstep;
               });
    dst = std::move(merged);
    patched.seq.erase(patched.seq.begin() + static_cast<std::ptrdiff_t>(p));
    patched.num_procs -= 1;
  }

  PlanOccurrenceIndex index;
  index.attach(&inst.dag, &patched);
  PatchContext ctx;
  ctx.inst = &inst;
  ctx.plan = &patched;
  ctx.index = &index;
  ctx.touched = &touched;

  // --- 2. Certification sweep: re-establish availability of every
  // occurrence's parents under the mutated DAG. Satisfied parents cost a
  // pair of index lookups; violated ones (retrofitted edges, nodes that
  // stopped being sources) get recompute-style local inserts at the
  // consumer's superstep. Inserted occurrences are certified by the
  // ensure() recursion itself, so the scan can skip over them.
  for (int p = 0; p < patched.num_procs; ++p) {
    auto& seq = patched.seq[static_cast<std::size_t>(p)];
    for (std::size_t j = 0; j < seq.size();) {
      const PlannedCompute pc = seq[j];
      std::size_t inserted = 0;
      for (NodeId parent : inst.dag.parents(pc.node)) {
        inserted += ctx.ensure(parent, p, j + inserted, pc.superstep);
      }
      j += inserted + 1;
    }
  }

  // --- 3. Completeness sweep: nodes with no occurrence (new arrivals, or
  // isolated nodes that just gained a parent) are placed in topological
  // order into fresh top supersteps. Each goes to the processor holding
  // most of its parents (communication locality; load breaks ties), so a
  // growth batch spreads across the machine instead of piling onto one
  // least-loaded processor. Availability holds through superstep order: a
  // pre-batch parent finished strictly before `top`, a same-batch parent
  // on the chosen processor is local and earlier in the sequence, and a
  // same-batch parent anywhere else forces a strictly later superstep.
  // The per-processor floor keeps appended supersteps monotone.
  {
    std::vector<NodeId> pending;
    for (NodeId v : topological_order(inst.dag)) {
      if (!inst.dag.is_source(v) && index.node_count(v) == 0) {
        pending.push_back(v);
      }
    }
    if (!pending.empty()) {
      const int top = index.num_supersteps();
      const int procs = patched.num_procs;
      std::vector<int> home(static_cast<std::size_t>(n), -1);
      std::vector<int> step(static_cast<std::size_t>(n), -1);
      std::vector<double> load(static_cast<std::size_t>(procs), 0);
      for (int p = 0; p < procs; ++p) {
        for (const PlannedCompute& pc :
             patched.seq[static_cast<std::size_t>(p)]) {
          if (home[static_cast<std::size_t>(pc.node)] < 0) {
            home[static_cast<std::size_t>(pc.node)] = p;
          }
          load[static_cast<std::size_t>(p)] +=
              inst.dag.omega(pc.node) / inst.arch.speed(p);
        }
      }
      std::vector<int> floor_step(static_cast<std::size_t>(procs), top);
      std::vector<double> score(static_cast<std::size_t>(procs), 0);
      for (NodeId v : pending) {
        std::fill(score.begin(), score.end(), 0.0);
        for (NodeId u : inst.dag.parents(v)) {
          const int h = home[static_cast<std::size_t>(u)];
          if (h >= 0) score[static_cast<std::size_t>(h)] += 1;
        }
        int target = 0;
        for (int p = 1; p < procs; ++p) {
          const std::size_t sp = static_cast<std::size_t>(p);
          const std::size_t st = static_cast<std::size_t>(target);
          if (score[sp] > score[st] ||
              (score[sp] == score[st] && load[sp] < load[st])) {
            target = p;
          }
        }
        int s = top;
        for (NodeId u : inst.dag.parents(v)) {
          const std::size_t su = static_cast<std::size_t>(u);
          if (step[su] < 0) continue;  // pre-batch parent: done before top
          s = std::max(s, home[su] == target ? step[su] : step[su] + 1);
        }
        s = std::max(s, floor_step[static_cast<std::size_t>(target)]);
        ctx.insert(target,
                   patched.seq[static_cast<std::size_t>(target)].size(), v,
                   s);
        home[static_cast<std::size_t>(v)] = target;
        step[static_cast<std::size_t>(v)] = s;
        floor_step[static_cast<std::size_t>(target)] = s;
        load[static_cast<std::size_t>(target)] +=
            inst.dag.omega(v) / inst.arch.speed(target);
      }
    }
  }

  const PlanValidation validation = validate_plan(inst.dag, patched);
  if (!validation) {
    set_error(error, "repair_plan: patched plan failed validation: " +
                         validation.error);
    return std::nullopt;
  }

  // --- 4. Polish mask: the delta's blast radius. Every touched node
  // (relocated, retrofitted, weight-changed, edge endpoint, newly placed)
  // plus `mask_radius` DAG hops; machine deltas reprice every superstep,
  // so they unmask the whole DAG.
  std::vector<char> mask;
  result.full_mask = delta.touches_machine();
  if (result.full_mask) {
    mask.assign(static_cast<std::size_t>(n), 1);
  } else {
    for (const InstanceDeltaOp& op : delta.ops) {
      switch (op.kind) {
        case InstanceDeltaOpKind::kAddEdge:
          touched[static_cast<std::size_t>(op.u)] = 1;
          touched[static_cast<std::size_t>(op.v)] = 1;
          break;
        case InstanceDeltaOpKind::kSetNodeWeight:
          touched[static_cast<std::size_t>(op.u)] = 1;
          break;
        default:
          break;
      }
    }
    for (NodeId v = nodes_before; v < n; ++v) {
      touched[static_cast<std::size_t>(v)] = 1;
    }
    mask = touched;
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
      if (mask[static_cast<std::size_t>(v)]) frontier.push_back(v);
    }
    for (int hop = 0; hop < options.mask_radius; ++hop) {
      std::vector<NodeId> next;
      for (NodeId v : frontier) {
        for (NodeId u : inst.dag.parents(v)) {
          if (!mask[static_cast<std::size_t>(u)]) {
            mask[static_cast<std::size_t>(u)] = 1;
            next.push_back(u);
          }
        }
        for (NodeId w : inst.dag.children(v)) {
          if (!mask[static_cast<std::size_t>(w)]) {
            mask[static_cast<std::size_t>(w)] = 1;
            next.push_back(w);
          }
        }
      }
      frontier = std::move(next);
    }
  }
  for (char bit : mask) result.masked_nodes += bit != 0;

  result.patched_cost = evaluate_plan(inst, patched, options.lns);

  // --- 5. Polish seeded from the patch, in two stages: two thirds of the
  // budget run under the locality mask (the delta's blast radius, where
  // moves are most likely to pay), the rest unmasked — the global pass is
  // what merges away the fresh supersteps the patch appends, which no
  // masked move can do once repairs chain along a trace. A full mask
  // makes the stages identical, so the whole budget runs in one pass.
  // An empty mask means the delta changed nothing a move could exploit.
  if (options.polish && result.masked_nodes > 0) {
    const auto polish = [&](const ComputePlan& seed_plan,
                            const LnsOptions& lns)
        -> std::pair<ComputePlan, long> {
      if (options.workers > 1) {
        PortfolioOptions popt;
        popt.lns = lns;
        popt.workers = options.workers;
        popt.epochs = options.epochs;
        popt.profile = PortfolioProfile::kUniform;
        popt.threads = static_cast<std::size_t>(
            options.threads > 0 ? options.threads : 0);
        const PortfolioLns portfolio(popt);
        PortfolioResult polished = portfolio.improve(inst, seed_plan);
        return {std::move(polished.plan), polished.iterations};
      }
      LnsResult polished = improve_plan(inst, seed_plan, lns);
      return {std::move(polished.plan), polished.iterations};
    };
    // A machine delta invalidates the incumbent's load balance wholesale,
    // and the order-preserving relocation can leave a seed a fresh
    // two-stage baseline on the mutated machine beats outright. Polish
    // from whichever is cheaper — deterministic, and it bounds how far a
    // repair can trail a from-scratch re-solve at equal polish budget.
    const ComputePlan* polish_seed = &patched;
    ComputePlan rebalanced;
    if (result.full_mask) {
      rebalanced = run_baseline(inst, BaselineKind::kGreedyClairvoyant).plan;
      if (evaluate_plan(inst, rebalanced, options.lns) <
          result.patched_cost) {
        polish_seed = &rebalanced;
      }
    }
    LnsOptions masked = options.lns;
    masked.node_mask = &mask;
    LnsOptions global = options.lns;
    const long global_iters =
        result.full_mask ? 0 : options.lns.max_iterations / 3;
    masked.max_iterations = options.lns.max_iterations - global_iters;
    global.max_iterations = global_iters;
    if (global_iters > 0 && options.lns.budget_ms > 0) {
      masked.budget_ms = options.lns.budget_ms * 2 / 3;
      global.budget_ms = options.lns.budget_ms - masked.budget_ms;
    }
    auto [masked_plan, masked_iters] = polish(*polish_seed, masked);
    result.plan = std::move(masked_plan);
    result.polish_iterations = masked_iters;
    if (global_iters > 0) {
      auto [global_plan, global_polish_iters] = polish(result.plan, global);
      result.plan = std::move(global_plan);
      result.polish_iterations += global_polish_iters;
    }
  } else {
    result.plan = patched;
  }

  // The reported cost is always a from-scratch evaluation of the returned
  // plan on the mutated instance — the differential-oracle contract.
  result.cost = evaluate_plan(inst, result.plan, options.lns, &result.schedule);
  return result;
}

}  // namespace mbsp
