#include "src/util/thread_pool.hpp"

namespace mbsp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  wake_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace mbsp
