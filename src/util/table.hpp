#pragma once
// Plain-text table rendering and CSV output for the benchmark harness.
// Every bench binary regenerating a paper table prints through this, so
// rows line up and the same data can be exported as CSV.

#include <string>
#include <vector>

namespace mbsp {

/// Column-aligned text table with an optional title, plus CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with aligned columns. `title` is printed above if non-empty.
  std::string to_text(const std::string& title = "") const;

  /// RFC-4180-ish CSV (fields with commas/quotes get quoted).
  std::string to_csv() const;

  /// Writes CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` digits after the decimal point.
std::string fmt(double value, int prec = 2);

}  // namespace mbsp
