#pragma once
// Minimal fixed-size thread pool. Used to parallelize independent solver
// runs in the benches (one instance per task), not for intra-solver
// parallelism: solvers stay deterministic and single-threaded.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mbsp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1 enforced).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; tasks must not throw.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `fn(i)` for i in [0, count) across the pool and waits.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace mbsp
