#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// We use xoshiro256** (Blackman & Vigna) rather than std::mt19937 so that
// every platform and standard library produces bit-identical instance
// datasets: the benchmark DAGs are *generated*, and the experiment tables
// are only comparable across runs if generation is deterministic.

#include <cstdint>
#include <vector>

namespace mbsp {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mbsp
