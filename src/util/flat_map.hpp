#pragma once
// Open-addressing hash table with integer keys for the evaluator's sparse
// per-processor state (docs/PERFORMANCE.md). Replaces the dense
// vector<int>-per-processor validator rows whose memory footprint was
// O(P * n) regardless of how few nodes actually cross processors.
//
// Design: power-of-two capacity, linear probing, a tombstone-free "clear
// by epoch" scheme (clear() bumps an epoch instead of touching every
// slot), keys are non-negative integers. The table never shrinks;
// capacity is retained across clears, so steady-state use allocates
// nothing. Iteration walks the compact insertion log, not the buckets,
// which keeps "visit every live entry" O(entries).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mbsp {

template <typename Key, typename Value>
class FlatMap {
 public:
  struct Entry {
    Key key;
    Value value;
  };

  FlatMap() { rehash(16); }

  /// Drops every entry in O(1) (epoch bump); keeps capacity.
  void clear() {
    ++epoch_;
    log_.clear();
    size_ = 0;
    if (epoch_ == 0) {  // wrapped: slots may alias the new epoch
      std::fill(slot_epoch_.begin(), slot_epoch_.end(), std::uint32_t(0));
      epoch_ = 1;
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns the value for `key`, inserting `fallback` first if absent.
  Value& get_or_insert(Key key, const Value& fallback) {
    if ((size_ + 1) * 4 > cap_ * 3) rehash(cap_ * 2);
    std::size_t at = probe(key);
    if (slot_epoch_[at] != epoch_) {
      slot_epoch_[at] = epoch_;
      keys_[at] = key;
      values_[at] = fallback;
      log_.push_back(at);
      ++size_;
    }
    return values_[at];
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  Value* find(Key key) {
    const std::size_t at = probe(key);
    return slot_epoch_[at] == epoch_ ? &values_[at] : nullptr;
  }
  const Value* find(Key key) const {
    const std::size_t at = probe(key);
    return slot_epoch_[at] == epoch_ ? &values_[at] : nullptr;
  }

  bool contains(Key key) const { return find(key) != nullptr; }

  /// Visits every live entry (insertion order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::size_t at : log_) {
      fn(keys_[at], values_[at]);
    }
  }

 private:
  std::size_t probe(Key key) const {
    std::size_t at = hash(key) & (cap_ - 1);
    while (slot_epoch_[at] == epoch_ && keys_[at] != key) {
      at = (at + 1) & (cap_ - 1);
    }
    return at;
  }

  static std::size_t hash(Key key) {
    // Fibonacci hashing: spreads consecutive integer keys.
    std::uint64_t h = static_cast<std::uint64_t>(key);
    h *= 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> 32);
  }

  void rehash(std::size_t new_cap) {
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    std::vector<std::uint32_t> old_epoch = std::move(slot_epoch_);
    std::vector<std::size_t> old_log = std::move(log_);
    const std::uint32_t old_mark = epoch_;
    cap_ = new_cap;
    keys_.assign(cap_, Key{});
    values_.assign(cap_, Value{});
    slot_epoch_.assign(cap_, 0);
    log_.clear();
    epoch_ = 1;
    size_ = 0;
    for (const std::size_t at : old_log) {
      if (old_epoch[at] != old_mark) continue;
      get_or_insert(old_keys[at], old_values[at]);
    }
  }

  std::size_t cap_ = 0;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;
  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::vector<std::uint32_t> slot_epoch_;
  std::vector<std::size_t> log_;  ///< bucket indices in insertion order
};

}  // namespace mbsp
