#include "src/util/rng.hpp"

namespace mbsp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& lane : s_) lane = splitmix64(seed);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias; span == 0 means full range.
  if (span == 0) return static_cast<std::int64_t>((*this)());
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::index(std::size_t n) {
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace mbsp
