#pragma once
// Wall-clock timing helpers used by the anytime solvers and the benches.

#include <chrono>

namespace mbsp {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

  double elapsed_s() const { return elapsed_ms() / 1000.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Deadline wrapper for anytime algorithms: `expired()` is cheap to poll.
class Deadline {
 public:
  /// budget_ms <= 0 means "no deadline".
  explicit Deadline(double budget_ms) : budget_ms_(budget_ms) {}

  bool expired() const {
    return budget_ms_ > 0 && timer_.elapsed_ms() >= budget_ms_;
  }

  double remaining_ms() const {
    if (budget_ms_ <= 0) return 1e18;
    double rem = budget_ms_ - timer_.elapsed_ms();
    return rem > 0 ? rem : 0;
  }

  double budget_ms() const { return budget_ms_; }

 private:
  double budget_ms_;
  Timer timer_;
};

}  // namespace mbsp
