#pragma once
// Environment-variable helpers for bench configuration (time budgets, CSV
// export) so benches can be tuned without recompiling.

#include <cstdlib>
#include <string>

namespace mbsp {

inline std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::string(value) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return end != value ? parsed : fallback;
}

inline long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  return end != value ? parsed : fallback;
}

}  // namespace mbsp
