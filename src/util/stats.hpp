#pragma once
// Small statistics helpers for the experiment harness.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace mbsp {

/// Geometric mean of strictly positive values; returns 0 for empty input.
inline double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// q-th quantile (0 <= q <= 1) with linear interpolation; input copied.
inline double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace mbsp
