#include "src/util/table.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace mbsp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_text(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "" : "  ");
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]) << (c + 1 == row.size() ? "" : ",");
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::string fmt(double value, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, value);
  return buf;
}

}  // namespace mbsp
