#pragma once
// Bump/arena allocation for the LNS hot path (docs/PERFORMANCE.md).
//
// The incremental evaluator runs millions of evaluations per second; each
// evaluation needs short-lived, variably-sized scratch (checkpoint cache
// rows, per-slot operation lists). Allocating that scratch through the
// general-purpose heap puts malloc/free on the hottest loop of the
// system. An Arena instead hands out pointers by bumping a cursor through
// chunked blocks; `reset()` makes every allocation reusable at once
// without returning memory to the OS, so steady-state evaluation performs
// no heap traffic at all.
//
// Two deliberate design points:
//  * Allocations are never freed individually; the owner resets the whole
//    arena at a well-defined point (per evaluation / per move). This is
//    exactly the lifetime the evaluator scratch has.
//  * `paranoid` mode (set via MBSP_ARENA_MODE=heap or set_paranoid())
//    routes every allocation to a fresh heap block poisoned with a junk
//    byte, and reset() frees them all. Differential tests run the same
//    workload in both modes and require bitwise-identical results, which
//    catches any accidental dependence on recycled arena contents.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace mbsp {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1 << 16)
      : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { release(); }

  /// Bump-allocates `bytes` aligned to `align` (a power of two).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (paranoid_) {
      void* p = ::operator new(bytes, std::align_val_t(align));
      std::memset(p, 0xAB, bytes);  // poison: no zero-init assumptions
      paranoid_blocks_.push_back({p, align});
      return p;
    }
    std::uintptr_t cur = reinterpret_cast<std::uintptr_t>(cursor_);
    std::uintptr_t aligned = (cur + (align - 1)) & ~(align - 1);
    if (aligned + bytes > reinterpret_cast<std::uintptr_t>(chunk_end_)) {
      grow(bytes + align);
      cur = reinterpret_cast<std::uintptr_t>(cursor_);
      aligned = (cur + (align - 1)) & ~(align - 1);
    }
    cursor_ = reinterpret_cast<char*>(aligned + bytes);
    return reinterpret_cast<void*>(aligned);
  }

  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Makes every allocation reusable. Keeps the chunks (steady state:
  /// zero heap traffic); in paranoid mode frees every block instead.
  void reset() {
    if (paranoid_) {
      for (const auto& [p, align] : paranoid_blocks_) {
        ::operator delete(p, std::align_val_t(align));
      }
      paranoid_blocks_.clear();
      return;
    }
    chunk_at_ = 0;
    if (!chunks_.empty()) {
      cursor_ = chunks_[0].data;
      chunk_end_ = chunks_[0].data + chunks_[0].size;
    } else {
      cursor_ = chunk_end_ = nullptr;
    }
  }

  /// Frees all chunks (back to a freshly constructed arena).
  void release() {
    reset();
    for (const Chunk& c : chunks_) ::operator delete(c.data);
    chunks_.clear();
    cursor_ = chunk_end_ = nullptr;
    chunk_at_ = 0;
  }

  /// Total bytes held in chunks (capacity, not live allocations).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

  bool paranoid() const { return paranoid_; }
  /// Paranoid (heap-per-allocation) mode; see the header comment. Only
  /// meaningful while the arena is empty/reset.
  void set_paranoid(bool on) { paranoid_ = on; }

 private:
  struct Chunk {
    char* data = nullptr;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    // Reuse the next retained chunk when it is big enough; otherwise
    // allocate a new one of at least chunk_bytes_.
    while (chunk_at_ + 1 < chunks_.size()) {
      ++chunk_at_;
      if (chunks_[chunk_at_].size >= at_least) {
        cursor_ = chunks_[chunk_at_].data;
        chunk_end_ = cursor_ + chunks_[chunk_at_].size;
        return;
      }
    }
    const std::size_t size = at_least > chunk_bytes_ ? at_least : chunk_bytes_;
    Chunk c;
    c.data = static_cast<char*>(::operator new(size));
    c.size = size;
    chunks_.push_back(c);
    chunk_at_ = chunks_.size() - 1;
    cursor_ = c.data;
    chunk_end_ = c.data + c.size;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_at_ = 0;
  char* cursor_ = nullptr;
  char* chunk_end_ = nullptr;
  bool paranoid_ = false;
  std::vector<std::pair<void*, std::size_t>> paranoid_blocks_;
};

/// Growable array backed by an Arena: push_back reallocates from the
/// arena (the old block is abandoned until the next reset — bounded
/// waste, zero free cost). For trivially copyable T only.
template <typename T>
class ArenaVector {
 public:
  ArenaVector() = default;
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void attach(Arena* arena) {
    arena_ = arena;
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  /// Forget the contents (the backing memory stays with the arena).
  void clear() {
    data_ = nullptr;
    size_ = cap_ = 0;
  }

  void push_back(const T& value) {
    if (size_ == cap_) grow();
    data_[size_++] = value;
  }

  void append(const T* src, std::size_t count) {
    while (size_ + count > cap_) grow();
    std::memcpy(data_ + size_, src, count * sizeof(T));
    size_ += count;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void grow() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    T* fresh = arena_->allocate_array<T>(new_cap);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = new_cap;
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace mbsp
