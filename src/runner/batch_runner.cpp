#include "src/runner/batch_runner.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <unordered_map>

#include "src/graph/dag_io.hpp"
#include "src/model/validate.hpp"
#include "src/util/thread_pool.hpp"

namespace mbsp {

namespace {

const char* cost_model_name(CostModel cost) {
  return cost == CostModel::kSynchronous ? "sync" : "async";
}

}  // namespace

BatchRunner::BatchRunner(BatchOptions options, const SchedulerRegistry& registry)
    : options_(std::move(options)), registry_(registry) {}

std::vector<BatchCell> BatchRunner::run_grid(
    const std::vector<MbspInstance>& instances,
    const std::vector<std::string>& schedulers) const {
  std::vector<CellSpec> specs;
  specs.reserve(instances.size() * schedulers.size());
  for (const MbspInstance& inst : instances) {
    for (const std::string& scheduler : schedulers) {
      specs.push_back({&inst, scheduler, options_.scheduler});
    }
  }
  return run_cells(specs);
}

std::vector<BatchCell> BatchRunner::run_cells(
    const std::vector<CellSpec>& cells) const {
  std::vector<BatchCell> out(cells.size());
  // Resolve every scheduler up front so a typo fails fast, before any work.
  std::vector<const MbspScheduler*> resolved(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    resolved[i] = &registry_.at(cells[i].scheduler);
  }
  // Hash each distinct instance once, not once per grid cell.
  std::unordered_map<const MbspInstance*, std::uint64_t> hashes;
  for (const CellSpec& spec : cells) {
    if (!hashes.count(spec.instance)) {
      hashes.emplace(spec.instance, dag_canonical_hash(spec.instance->dag));
    }
  }

  const std::size_t threads =
      options_.threads > 0
          ? options_.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  ThreadPool pool(std::min(threads, std::max<std::size_t>(1, cells.size())));
  const bool validate_cells = options_.validate;
  parallel_for(pool, cells.size(), [&](std::size_t i) {
    const CellSpec& spec = cells[i];
    BatchCell& cell = out[i];
    cell.instance = spec.instance->name();
    cell.dag_hash = hashes.at(spec.instance);
    cell.machine = spec.instance->arch.name;
    cell.scheduler = spec.scheduler;
    cell.cost_model = spec.options.cost;
    const MbspScheduler& scheduler = *resolved[i];
    if (!scheduler.supports(*spec.instance)) {
      cell.error = "unsupported instance";
      return;
    }
    try {
      cell.result = scheduler.run(*spec.instance, spec.options);
    } catch (const std::exception& e) {
      cell.error = e.what();
      return;
    }
    if (validate_cells) {
      const ValidationResult valid =
          validate(*spec.instance, cell.result.schedule);
      if (!valid.ok) {
        cell.error = "invalid schedule: " + valid.error;
        return;
      }
    }
    cell.ok = true;
  });
  return out;
}

Table batch_table(const std::vector<BatchCell>& cells,
                  bool include_wall_time, bool include_hash) {
  // The machine column appears whenever any cell ran on a named machine
  // (a pure function of the cells, so tables stay bitwise reproducible).
  bool include_machine = false;
  for (const BatchCell& cell : cells) include_machine |= !cell.machine.empty();
  std::vector<std::string> header{"instance", "scheduler",  "model",
                                  "cost",     "ratio",      "io",
                                  "supersteps"};
  if (include_machine) header.insert(header.begin() + 1, "machine");
  if (include_hash) header.push_back("dag_hash");
  if (include_wall_time) header.push_back("wall_ms");
  Table table(std::move(header));
  // Ratio reference per (instance, machine): its first ok cell (the
  // grid's first scheduler, by construction of run_grid's cell order).
  std::unordered_map<std::string, const BatchCell*> references;
  for (const BatchCell& cell : cells) {
    if (cell.ok) {
      references.try_emplace(cell.instance + "\x1f" + cell.machine, &cell);
    }
  }
  for (const BatchCell& cell : cells) {
    const auto it = references.find(cell.instance + "\x1f" + cell.machine);
    const BatchCell* reference = it == references.end() ? nullptr : it->second;
    std::vector<std::string> row{cell.instance, cell.scheduler,
                                 cost_model_name(cell.cost_model)};
    if (!cell.ok) {
      row.insert(row.end(), {"-", "-", "-", "-"});
      row[3] = cell.error.empty() ? "-" : cell.error;
    } else {
      row.push_back(fmt(cell.result.cost, 1));
      row.push_back(reference != nullptr && reference->result.cost > 0
                        ? fmt(cell.result.cost / reference->result.cost, 2)
                        : "-");
      row.push_back(fmt(cell.result.io_volume, 0));
      row.push_back(std::to_string(cell.result.supersteps));
    }
    if (include_hash) row.push_back(dag_hash_hex(cell.dag_hash));
    if (include_wall_time) {
      row.push_back(cell.ok ? fmt(cell.result.wall_ms, 1) : "-");
    }
    if (include_machine) {
      // Inserted last so the error-row indices above stay column-stable.
      // Ad-hoc architectures (no canonical name) render as "-" so they
      // cannot collide with the registry's all-default "uniform" name.
      row.insert(row.begin() + 1,
                 cell.machine.empty() ? "-" : cell.machine);
    }
    table.add_row(std::move(row));
  }
  return table;
}

const BatchCell* find_cell(const std::vector<BatchCell>& cells,
                           const std::string& instance,
                           const std::string& scheduler) {
  for (const BatchCell& cell : cells) {
    if (cell.instance == instance && cell.scheduler == scheduler) return &cell;
  }
  return nullptr;
}

}  // namespace mbsp
