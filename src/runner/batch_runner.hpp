#pragma once
// Parallel batch-experiment engine: fans an instance x scheduler (x options)
// grid across the ThreadPool — one cell per (instance, scheduler) pair, each
// solve single-threaded and deterministic — and collects per-cell
// ScheduleResult rows. Cells are indexed up front and written into a
// preallocated vector, so the result (and any table rendered from it) is
// bitwise-identical whatever the thread count; wall times are recorded per
// cell but excluded from tables by default for exactly that reason.

#include <cstdint>
#include <string>
#include <vector>

#include "src/runner/scheduler_registry.hpp"
#include "src/util/table.hpp"

namespace mbsp {

/// One completed grid cell. Cells are keyed by (instance name, canonical
/// DAG hash, machine name): corpus-generated instances are named by their
/// workload spec, the hash pins the exact DAG the row was computed on,
/// and the machine name is the canonical machine spec the cell ran on
/// ("" for ad-hoc uniform architectures — see docs/MACHINES.md).
struct BatchCell {
  std::string instance;   ///< instance name (workload spec for corpus runs)
  std::uint64_t dag_hash = 0;  ///< dag_canonical_hash of the instance DAG
  std::string machine;    ///< canonical machine name (Machine::name)
  std::string scheduler;  ///< scheduler name
  CostModel cost_model = CostModel::kSynchronous;
  bool ok = false;
  std::string error;      ///< unsupported scheduler / invalid schedule / throw
  ScheduleResult result;  ///< valid when ok
};

struct BatchOptions {
  /// 0 means hardware concurrency. The cell set is independent of this.
  std::size_t threads = 0;
  /// Re-validate every produced schedule; failures turn into cell errors.
  bool validate = true;
  /// Base scheduler options used by run_grid (per-cell runs override).
  SchedulerOptions scheduler;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {},
                       const SchedulerRegistry& registry =
                           SchedulerRegistry::global());

  /// Non-rectangular sweeps: one cell per spec, options per cell.
  struct CellSpec {
    const MbspInstance* instance = nullptr;
    std::string scheduler;
    SchedulerOptions options;
  };

  /// Runs every (instance, scheduler) pair with the base options.
  /// Cell order: instance-major, scheduler-minor.
  std::vector<BatchCell> run_grid(
      const std::vector<MbspInstance>& instances,
      const std::vector<std::string>& schedulers) const;

  std::vector<BatchCell> run_cells(const std::vector<CellSpec>& cells) const;

  const SchedulerRegistry& registry() const { return registry_; }
  const BatchOptions& options() const { return options_; }

 private:
  BatchOptions options_;
  const SchedulerRegistry& registry_;
};

/// Renders cells as a table: instance, scheduler, cost model, cost, ratio
/// vs the first ok cell of the same (instance, machine), I/O volume,
/// supersteps — plus a machine column whenever any cell carries a named
/// machine (a pure function of the cells, so tables stay bitwise
/// reproducible), wall time when requested (non-deterministic; off by
/// default) and the canonical DAG hash (deterministic; corpus sweeps turn
/// it on so result rows are verifiable against the generating spec).
Table batch_table(const std::vector<BatchCell>& cells,
                  bool include_wall_time = false, bool include_hash = false);

/// First cell matching (instance, scheduler); nullptr when absent.
const BatchCell* find_cell(const std::vector<BatchCell>& cells,
                           const std::string& instance,
                           const std::string& scheduler);

}  // namespace mbsp
