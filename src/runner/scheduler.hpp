#pragma once
// Uniform scheduler API over every MBSP scheduling algorithm in the repo:
// the two-stage baselines (Section 4), the holistic LNS / divide-and-conquer
// pipeline (Sections 5-6), the exact pebbler and the full ILP. A scheduler
// takes an instance plus one flat option struct and returns one flat result
// row, so benches, examples and the batch runner can treat "which algorithm"
// as data instead of hand-wiring each combination.

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/policy.hpp"
#include "src/holistic/lns.hpp"  // CostModel, LnsMove
#include "src/holistic/portfolio.hpp"  // PortfolioProfile
#include "src/model/instance.hpp"
#include "src/model/schedule.hpp"
#include "src/twostage/compute_plan.hpp"
#include "src/twostage/two_stage.hpp"  // BaselineKind

namespace mbsp {

struct InstanceDelta;  // src/holistic/repair.hpp

/// One option struct shared by every scheduler; fields a given scheduler
/// does not understand are ignored (e.g. move_mask outside the LNS).
struct SchedulerOptions {
  double budget_ms = 1500;  ///< total optimization budget (anytime solvers)
  CostModel cost = CostModel::kSynchronous;
  bool allow_recompute = true;
  std::uint64_t seed = 42;
  /// LNS iteration cap. Batch runs that must be reproducible bit-for-bit
  /// use budget_ms = 0 (no deadline) plus a finite iteration cap, making
  /// the anytime search independent of wall-clock speed.
  long max_iterations = 2'000'000;

  /// Warm start for the improving schedulers (lns / holistic / ilp).
  BaselineKind warm_start = BaselineKind::kGreedyClairvoyant;
  /// Stage-1 budget for the refined ("ILP-BSP") warm start / baseline.
  double stage1_budget_ms = 300;
  /// Caller-provided warm-start plan for the improving schedulers
  /// (lns / lns-portfolio): when set, the search starts from this plan
  /// instead of running the two-stage baseline. The plan must pass
  /// validate_plan for the instance and outlive the run() call. The LNS
  /// contract makes the result never worse than this start; the schedule
  /// cache (src/daemon/) uses it to warm-start near-miss requests from a
  /// cached incumbent (docs/DAEMON.md).
  const ComputePlan* warm_start_plan = nullptr;
  /// LNS ablation knobs: start from the trivial all-on-p0 plan instead of
  /// the warm start, restrict the move classes, swap the completion policy.
  bool cold_start = false;
  unsigned move_mask = kAllMoves;
  PolicyKind completion_policy = PolicyKind::kClairvoyant;

  /// Holistic facade / divide-and-conquer sizing.
  int divide_conquer_threshold = 120;
  int max_part_size = 60;

  /// Sharded out-of-core pipeline ("sharded" scheduler; docs/SCALE.md):
  /// acyclic k-way partition into `shards` intervals, per-shard LNS fanned
  /// out on `shard_threads` workers (0 = hardware concurrency; the thread
  /// count never changes the result), then a boundary-masked global
  /// polish. compare_full_seed returns the cheaper of the sharded plan
  /// and the unpartitioned greedy seed — disable for instances too large
  /// to schedule unsharded.
  int shards = 8;
  int shard_threads = 0;
  bool compare_full_seed = true;

  /// Portfolio (lns-portfolio) sizing: concurrent LNS workers with
  /// SplitMix-derived per-worker seeds, exchanging incumbents every
  /// `epochs`-th slice of the iteration budget. Deterministic by default
  /// (epoch barriers; reproducible for budget_ms = 0 regardless of thread
  /// count); free_running trades that for wall-clock throughput.
  int workers = 4;
  int epochs = 4;
  PortfolioProfile portfolio_profile = PortfolioProfile::kDiverse;
  bool free_running = false;

  /// Online repair ("repair" scheduler; docs/REPAIR.md). The instance
  /// passed to run() is the MUTATED one; `repair_delta` is the
  /// InstanceDelta that produced it from the instance `warm_start_plan`
  /// (the pre-delta incumbent, required) was solved for. Without both,
  /// the repair scheduler degenerates to a plain "lns" run. The pointer
  /// must outlive the run() call, like warm_start_plan.
  const InstanceDelta* repair_delta = nullptr;
  /// Disable the locality-masked polish after patching (bench ablation:
  /// measures the pure structural patch).
  bool repair_polish = true;
  /// DAG hops around the delta's touched nodes that stay movable during
  /// the repair polish.
  int repair_mask_radius = 1;
};

/// One result row: the schedule plus the metrics every harness reports.
struct ScheduleResult {
  std::string scheduler;   ///< name() of the producing scheduler
  MbspSchedule schedule;
  ComputePlan plan;        ///< compute plan, when the scheduler keeps one
  double cost = 0;         ///< cost of `schedule` under options.cost
  double baseline_cost = 0;  ///< warm-start cost (== cost for baselines)
  double io_volume = 0;    ///< sum of mu over saves + loads
  int supersteps = 0;
  double wall_ms = 0;      ///< wall time of run() (excluded from tables)
  std::size_t num_parts = 0;  ///< divide-and-conquer part count (else 0)
  bool optimal = false;    ///< exact solvers: optimum proven
  /// LNS move statistics (size kNumMoveClasses for LNS runs, else empty):
  /// proposals / SA acceptances per move class, indexed like
  /// lns_move_class_name. Ablation benches report acceptance rates from
  /// these instead of re-deriving them.
  std::vector<long> lns_proposed;
  std::vector<long> lns_accepted;
};

/// Polymorphic scheduler. Implementations are stateless and `run` is
/// const + thread-safe, so one registered instance can serve a whole
/// thread-pooled batch.
class MbspScheduler {
 public:
  virtual ~MbspScheduler() = default;

  virtual std::string name() const = 0;

  /// Whether this scheduler can handle `inst` (e.g. the exact pebbler
  /// requires P = 1 and a small DAG). Batch runs skip unsupported cells.
  virtual bool supports(const MbspInstance&) const { return true; }

  /// Produces a valid schedule (tests assert validate()-cleanliness for
  /// every registered scheduler). Deterministic given (inst, options).
  virtual ScheduleResult run(const MbspInstance& inst,
                             const SchedulerOptions& options) const = 0;
};

}  // namespace mbsp
