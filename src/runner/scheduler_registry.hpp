#pragma once
// Central registry of every MbspScheduler. The global registry comes
// pre-populated with all algorithms in the repo:
//
//   bspg+clairvoyant     main two-stage baseline (BSPg + clairvoyant)
//   bspg+lru             BSPg + LRU (policy-ablation variant)
//   cilk+lru             practical two-stage baseline
//   ilp-bsp+clairvoyant  strong two-stage baseline (refined stage 1)
//   dfs+clairvoyant      P = 1 pebbling two-stage baseline
//   lns                  holistic LNS improving a (configurable) warm start
//   lns-portfolio        K-worker parallel portfolio LNS with deterministic
//                        incumbent exchange at epoch barriers
//   holistic             the facade: LNS on small DAGs, D&C on large ones
//   divide-conquer       the divide-and-conquer pipeline, always
//   exact-pebbler        exact P = 1 red-blue pebbling (small DAGs)
//   ilp                  full ILP + branch-and-bound (tiny DAGs)
//   repair               online repair: patch a pre-delta incumbent onto
//                        the mutated instance + locality-masked polish
//
// Adding a scheduler is one `add(...)` call (see README.md); everything
// driving the registry — benches, suite_runner, BatchRunner — picks the
// newcomer up by name with no further changes.

#include <memory>
#include <string>
#include <vector>

#include "src/runner/scheduler.hpp"

namespace mbsp {

class SchedulerRegistry {
 public:
  /// Empty registry (tests); `global()` is the pre-populated one.
  SchedulerRegistry() = default;

  /// The process-wide registry with every built-in scheduler registered.
  /// Register custom schedulers before starting batch runs; lookups are
  /// not synchronized against concurrent registration.
  static SchedulerRegistry& global();

  /// Registers `scheduler` under its name(); replaces any previous holder
  /// of that name.
  void add(std::unique_ptr<MbspScheduler> scheduler);

  /// Whether a scheduler of that exact name is registered (read-only,
  /// thread-safe after registration).
  bool contains(const std::string& name) const;

  /// Looks a scheduler up by name; nullptr when absent. The returned
  /// scheduler is stateless: run() is const, thread-safe, and
  /// deterministic given (instance, options).
  const MbspScheduler* find(const std::string& name) const;

  /// Like find(), but throws std::out_of_range naming the missing
  /// scheduler (the CLI-facing lookup).
  const MbspScheduler& at(const std::string& name) const;

  /// All registered names, sorted (a deterministic listing regardless of
  /// registration order).
  std::vector<std::string> names() const;

  std::size_t size() const { return schedulers_.size(); }

 private:
  std::vector<std::unique_ptr<MbspScheduler>> schedulers_;
};

/// Registers the built-in schedulers listed above into `registry` (what
/// `global()` does on first use; exposed for registry-local tests).
void register_builtin_schedulers(SchedulerRegistry& registry);

/// The trivial cold-start plan: every non-source node on processor 0 in one
/// superstep, topological order (the LNS ablation's cold start). Pure
/// function of the instance.
ComputePlan trivial_plan(const MbspInstance& inst);

}  // namespace mbsp
