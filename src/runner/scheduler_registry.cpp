#include "src/runner/scheduler_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/graph/topology.hpp"
#include "src/holistic/divide_conquer.hpp"
#include "src/holistic/repair.hpp"
#include "src/holistic/exact_pebbler.hpp"
#include "src/holistic/shard.hpp"
#include "src/holistic/formulation.hpp"
#include "src/holistic/portfolio.hpp"
#include "src/holistic/scheduler.hpp"
#include "src/ilp/solver.hpp"
#include "src/model/cost.hpp"
#include "src/model/validate.hpp"
#include "src/twostage/memory_completion.hpp"
#include "src/util/timer.hpp"

namespace mbsp {

namespace {

/// Fills the metric fields every adapter shares.
void finalize(const MbspInstance& inst, const SchedulerOptions& options,
              const Timer& timer, ScheduleResult& result) {
  result.cost = schedule_cost(inst, result.schedule, options.cost);
  result.io_volume = io_volume(inst, result.schedule);
  result.supersteps = result.schedule.num_supersteps();
  result.wall_ms = timer.elapsed_ms();
  if (result.baseline_cost == 0) result.baseline_cost = result.cost;
}

LnsOptions to_lns(const SchedulerOptions& options) {
  LnsOptions lns;
  lns.budget_ms = options.budget_ms;
  lns.cost = options.cost;
  lns.allow_recompute = options.allow_recompute;
  lns.completion_policy = options.completion_policy;
  lns.seed = options.seed;
  lns.move_mask = options.move_mask;
  lns.max_iterations = options.max_iterations;
  return lns;
}

HolisticOptions to_holistic(const SchedulerOptions& options) {
  HolisticOptions holistic;
  holistic.budget_ms = options.budget_ms;
  holistic.cost = options.cost;
  holistic.allow_recompute = options.allow_recompute;
  holistic.seed = options.seed;
  holistic.max_iterations = options.max_iterations;
  holistic.divide_conquer_threshold = options.divide_conquer_threshold;
  holistic.max_part_size = options.max_part_size;
  holistic.warm_start = options.warm_start;
  return holistic;
}

/// The four paper baselines plus policy variants: stage-1 scheduler choice
/// via BaselineKind, eviction policy overridable (e.g. BSPg + LRU).
class TwoStageAdapter final : public MbspScheduler {
 public:
  TwoStageAdapter(std::string name, BaselineKind stage1, PolicyKind policy)
      : name_(std::move(name)), stage1_(stage1), policy_(policy) {}

  std::string name() const override { return name_; }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    TwoStageResult two_stage =
        run_baseline(inst, stage1_, options.stage1_budget_ms);
    ScheduleResult result;
    result.scheduler = name_;
    if (policy_ == baseline_policy(stage1_)) {
      result.schedule = std::move(two_stage.mbsp);
    } else {
      result.schedule = complete_memory(inst, two_stage.plan, policy_);
    }
    result.plan = std::move(two_stage.plan);
    finalize(inst, options, timer, result);
    return result;
  }

 private:
  static PolicyKind baseline_policy(BaselineKind kind) {
    return kind == BaselineKind::kCilkLru ? PolicyKind::kLru
                                          : PolicyKind::kClairvoyant;
  }

  std::string name_;
  BaselineKind stage1_;
  PolicyKind policy_;
};

/// The holistic LNS, warm-started from a configurable two-stage baseline
/// (or the trivial cold-start plan). Exposes the ablation knobs.
class LnsAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "lns"; }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    const ComputePlan initial =
        options.warm_start_plan != nullptr ? *options.warm_start_plan
        : options.cold_start
            ? trivial_plan(inst)
            : run_baseline(inst, options.warm_start, options.stage1_budget_ms)
                  .plan;
    LnsResult lns = improve_plan(inst, initial, to_lns(options));
    ScheduleResult result;
    result.scheduler = name();
    result.schedule = std::move(lns.schedule);
    result.plan = std::move(lns.plan);
    result.baseline_cost = lns.initial_cost;
    result.lns_proposed.assign(lns.proposed_by_class.begin(),
                               lns.proposed_by_class.end());
    result.lns_accepted.assign(lns.accepted_by_class.begin(),
                               lns.accepted_by_class.end());
    finalize(inst, options, timer, result);
    return result;
  }
};

/// The parallel portfolio LNS: options.workers concurrent workers with
/// derived seeds and (per the profile) diversified annealing, exchanging
/// incumbents at options.epochs deterministic epoch barriers.
class PortfolioAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "lns-portfolio"; }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    const ComputePlan initial =
        options.warm_start_plan != nullptr ? *options.warm_start_plan
        : options.cold_start
            ? trivial_plan(inst)
            : run_baseline(inst, options.warm_start, options.stage1_budget_ms)
                  .plan;
    PortfolioOptions portfolio;
    portfolio.lns = to_lns(options);
    portfolio.workers = options.workers;
    portfolio.epochs = options.epochs;
    portfolio.profile = options.portfolio_profile;
    portfolio.free_running = options.free_running;
    PortfolioResult res = PortfolioLns(portfolio).improve(inst, initial);
    ScheduleResult result;
    result.scheduler = name();
    result.schedule = std::move(res.schedule);
    result.plan = std::move(res.plan);
    result.baseline_cost = res.initial_cost;
    result.lns_proposed.assign(res.proposed_by_class.begin(),
                               res.proposed_by_class.end());
    result.lns_accepted.assign(res.accepted_by_class.begin(),
                               res.accepted_by_class.end());
    finalize(inst, options, timer, result);
    return result;
  }
};

/// Online schedule repair (docs/REPAIR.md): patch the pre-delta incumbent
/// (options.warm_start_plan) onto the mutated instance along
/// options.repair_delta, then run the locality-masked polish. The serving
/// path (mbspd REPAIR frames) and suite_runner --repair go through here.
/// Without an incumbent + delta pair it degenerates to a plain "lns" run,
/// so the registry contract (any scheduler handles any instance) holds.
class RepairAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "repair"; }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    ScheduleResult result;
    result.scheduler = name();
    if (options.warm_start_plan != nullptr && options.repair_delta != nullptr) {
      RepairOptions repair;
      repair.lns = to_lns(options);
      repair.polish = options.repair_polish;
      repair.mask_radius = options.repair_mask_radius;
      // Single-worker polish: repair is the serving-latency path; callers
      // that want a portfolio polish call repair_plan directly.
      repair.workers = 1;
      std::string error;
      auto repaired = repair_plan(inst, *options.warm_start_plan,
                                  *options.repair_delta, repair, &error);
      if (repaired) {
        result.schedule = std::move(repaired->schedule);
        result.plan = std::move(repaired->plan);
        result.baseline_cost = repaired->patched_cost;
        finalize(inst, options, timer, result);
        return result;
      }
      // Incumbent unusable for this delta (shape mismatch): fall through
      // to a from-scratch LNS solve below.
    }
    const ComputePlan initial =
        options.cold_start
            ? trivial_plan(inst)
            : run_baseline(inst, options.warm_start, options.stage1_budget_ms)
                  .plan;
    LnsResult lns = improve_plan(inst, initial, to_lns(options));
    result.schedule = std::move(lns.schedule);
    result.plan = std::move(lns.plan);
    result.baseline_cost = lns.initial_cost;
    finalize(inst, options, timer, result);
    return result;
  }
};

/// The top-level facade: LNS below the divide-and-conquer threshold, the
/// divide-and-conquer pipeline above it (how the paper deploys its ILP).
class HolisticAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "holistic"; }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    HolisticOutcome out = holistic_schedule(inst, to_holistic(options));
    ScheduleResult result;
    result.scheduler = name();
    result.schedule = std::move(out.schedule);
    result.plan = std::move(out.plan);
    result.baseline_cost = out.baseline_cost;
    finalize(inst, options, timer, result);
    return result;
  }
};

/// Divide-and-conquer unconditionally (Table 2). budget_ms is split /4 into
/// the per-part LNS budget, matching the paper bench's convention.
class DivideConquerAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "divide-conquer"; }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    DivideConquerOptions dnc;
    dnc.max_part_size = options.max_part_size;
    dnc.lns = to_lns(options);
    dnc.lns.budget_ms = options.budget_ms / 4;  // per part
    DivideConquerResult res = divide_conquer_schedule(inst, dnc);
    ScheduleResult result;
    result.scheduler = name();
    result.schedule = std::move(res.schedule);
    result.plan = std::move(res.plan);
    result.num_parts = res.num_parts;
    finalize(inst, options, timer, result);
    return result;
  }
};

/// The sharded out-of-core pipeline (docs/SCALE.md): acyclic k-way
/// partition, per-shard LNS fan-out with shard-indexed seeds, stitch,
/// boundary-masked global polish. budget_ms is split across the shards;
/// a quarter of the iteration budget funds the polish.
class ShardedAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "sharded"; }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    ShardOptions shard;
    shard.num_shards = std::max(1, options.shards);
    shard.lns = to_lns(options);
    shard.lns.budget_ms = options.budget_ms / shard.num_shards;  // per shard
    shard.polish_budget_ms = options.budget_ms / 4;
    shard.polish_max_iterations = std::max(1L, options.max_iterations / 4);
    shard.num_threads = options.shard_threads;
    shard.compare_full_seed = options.compare_full_seed;
    ShardResult res = shard_schedule(inst, shard);
    ScheduleResult result;
    result.scheduler = name();
    result.schedule = std::move(res.schedule);
    result.plan = std::move(res.plan);
    result.num_parts = res.num_shards;
    result.baseline_cost = res.seed_cost;
    finalize(inst, options, timer, result);
    return result;
  }
};

/// Exact P = 1 red-blue pebbling (Dijkstra over configurations). Falls back
/// to the DFS baseline when the state-space limits are hit.
class ExactPebbleAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "exact-pebbler"; }

  bool supports(const MbspInstance& inst) const override {
    // Uniform machines only: the pebbling state space prices transfers
    // with the flat g, so optimality claims don't carry to heterogeneous
    // cost models.
    return inst.arch.num_processors == 1 && inst.dag.num_nodes() <= 30 &&
           inst.arch.is_uniform();
  }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    ExactPebbleOptions pebble;
    // budget_ms <= 0 means "no deadline", like everywhere else (see
    // src/util/timer.hpp and the batch determinism contract). Substituting
    // the 30 s pebbler default here made budget-0 grids machine-speed
    // dependent; max_states still bounds the search deterministically.
    pebble.budget_ms = options.budget_ms;
    ExactPebbleResult res = exact_pebble(inst, pebble);
    ScheduleResult result;
    result.scheduler = name();
    if (res.solved) {
      result.schedule = std::move(res.schedule);
      result.optimal = true;
    } else {
      result.schedule =
          run_baseline(inst, BaselineKind::kDfsClairvoyant).mbsp;
    }
    finalize(inst, options, timer, result);
    return result;
  }
};

/// The full ILP (Section 6.1): encode the warm-start baseline, branch and
/// bound within the budget, extract the incumbent if it improves.
class IlpAdapter final : public MbspScheduler {
 public:
  std::string name() const override { return "ilp"; }

  bool supports(const MbspInstance& inst) const override {
    // Uniform machines only: the MILP objective encodes the flat
    // (g, L) machine, so its optimality proof is machine-specific.
    return inst.dag.num_nodes() <= 30 && inst.arch.is_uniform();
  }

  ScheduleResult run(const MbspInstance& inst,
                     const SchedulerOptions& options) const override {
    const Timer timer;
    TwoStageResult base =
        run_baseline(inst, options.warm_start, options.stage1_budget_ms);
    const double base_cost = schedule_cost(inst, base.mbsp, options.cost);

    FormulationOptions form;
    form.cost = options.cost;
    form.allow_recompute = options.allow_recompute;
    form.num_steps = IlpFormulation::steps_required(base.mbsp);
    const IlpFormulation formulation(inst, form);
    const std::vector<double> warm = formulation.encode_schedule(base.mbsp);

    ScheduleResult result;
    result.scheduler = name();
    result.baseline_cost = base_cost;
    result.schedule = std::move(base.mbsp);
    result.plan = std::move(base.plan);
    if (!warm.empty()) {
      ilp::MipOptions mip;
      mip.budget_ms = options.budget_ms;
      const ilp::MipResult res =
          ilp::BranchAndBoundSolver(mip).solve(formulation.model(), warm);
      const bool has_incumbent = res.status == ilp::MipStatus::kOptimal ||
                                 res.status == ilp::MipStatus::kFeasible;
      bool adopted = false;
      if (has_incumbent && res.objective < base_cost - 1e-9) {
        MbspSchedule improved = formulation.extract_schedule(res.x);
        if (validate(inst, improved).ok &&
            schedule_cost(inst, improved, options.cost) < base_cost) {
          result.schedule = std::move(improved);
          result.plan = ComputePlan{};
          adopted = true;
        }
      }
      // Only claim optimality when the returned schedule attains it: the
      // incumbent was adopted, or the warm start already is the optimum.
      result.optimal = res.status == ilp::MipStatus::kOptimal &&
                       (adopted || res.objective >= base_cost - 1e-9);
    }
    finalize(inst, options, timer, result);
    return result;
  }
};

}  // namespace

ComputePlan trivial_plan(const MbspInstance& inst) {
  ComputePlan plan;
  plan.num_procs = inst.arch.num_processors;
  plan.seq.resize(plan.num_procs);
  for (NodeId v : topological_order(inst.dag)) {
    if (!inst.dag.is_source(v)) plan.seq[0].push_back({v, 0});
  }
  return plan;
}

void register_builtin_schedulers(SchedulerRegistry& registry) {
  registry.add(std::make_unique<TwoStageAdapter>(
      "bspg+clairvoyant", BaselineKind::kGreedyClairvoyant,
      PolicyKind::kClairvoyant));
  registry.add(std::make_unique<TwoStageAdapter>(
      "bspg+lru", BaselineKind::kGreedyClairvoyant, PolicyKind::kLru));
  registry.add(std::make_unique<TwoStageAdapter>(
      "cilk+lru", BaselineKind::kCilkLru, PolicyKind::kLru));
  registry.add(std::make_unique<TwoStageAdapter>(
      "ilp-bsp+clairvoyant", BaselineKind::kRefinedClairvoyant,
      PolicyKind::kClairvoyant));
  registry.add(std::make_unique<TwoStageAdapter>(
      "dfs+clairvoyant", BaselineKind::kDfsClairvoyant,
      PolicyKind::kClairvoyant));
  registry.add(std::make_unique<LnsAdapter>());
  registry.add(std::make_unique<PortfolioAdapter>());
  registry.add(std::make_unique<RepairAdapter>());
  registry.add(std::make_unique<HolisticAdapter>());
  registry.add(std::make_unique<DivideConquerAdapter>());
  registry.add(std::make_unique<ShardedAdapter>());
  registry.add(std::make_unique<ExactPebbleAdapter>());
  registry.add(std::make_unique<IlpAdapter>());
}

SchedulerRegistry& SchedulerRegistry::global() {
  static SchedulerRegistry* registry = [] {
    auto* r = new SchedulerRegistry;
    register_builtin_schedulers(*r);
    return r;
  }();
  return *registry;
}

void SchedulerRegistry::add(std::unique_ptr<MbspScheduler> scheduler) {
  const std::string name = scheduler->name();
  for (auto& existing : schedulers_) {
    if (existing->name() == name) {
      existing = std::move(scheduler);
      return;
    }
  }
  schedulers_.push_back(std::move(scheduler));
}

bool SchedulerRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const MbspScheduler* SchedulerRegistry::find(const std::string& name) const {
  for (const auto& scheduler : schedulers_) {
    if (scheduler->name() == name) return scheduler.get();
  }
  return nullptr;
}

const MbspScheduler& SchedulerRegistry::at(const std::string& name) const {
  const MbspScheduler* scheduler = find(name);
  if (scheduler == nullptr) {
    throw std::out_of_range("no scheduler named '" + name +
                            "' in the registry");
  }
  return *scheduler;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(schedulers_.size());
  for (const auto& scheduler : schedulers_) out.push_back(scheduler->name());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mbsp
