#pragma once
// Cache eviction policies for the memory-management stage (Section 4):
//  * Clairvoyant (Bélády / the paper's baseline): evict the value whose
//    next use on this processor lies farthest in the future;
//  * LRU: evict the value that was least recently active (computed or
//    consumed).
//
// Policies are stateless rankers over victim candidates; the owner (the
// memory-completion engine or the cache simulator) supplies the next-use /
// last-active information, because only it knows the fixed compute order.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>

#include "src/graph/dag.hpp"

namespace mbsp {

/// Sentinel meaning "no further use".
constexpr std::int64_t kNoNextUse = std::numeric_limits<std::int64_t>::max();

/// Per-candidate information available at eviction time.
struct VictimInfo {
  NodeId node = kInvalidNode;
  std::int64_t next_use = kNoNextUse;  ///< position of the next use, or kNoNextUse
  std::int64_t last_active = -1;       ///< position of the most recent activity
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Chooses the eviction victim among `candidates` (non-empty). Dead
  /// values (next_use == kNoNextUse) should be preferred by every policy.
  virtual NodeId choose_victim(std::span<const VictimInfo> candidates) const = 0;

  virtual std::string name() const = 0;
};

/// The paper's strong baseline: farthest next use wins.
class ClairvoyantPolicy final : public EvictionPolicy {
 public:
  NodeId choose_victim(std::span<const VictimInfo> candidates) const override;
  std::string name() const override { return "clairvoyant"; }
};

/// Least-recently-used: smallest last_active wins (dead values first).
class LruPolicy final : public EvictionPolicy {
 public:
  NodeId choose_victim(std::span<const VictimInfo> candidates) const override;
  std::string name() const override { return "lru"; }
};

enum class PolicyKind { kClairvoyant, kLru };

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind);

}  // namespace mbsp
