#include "src/cache/cache_sim.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace mbsp {

CacheSimResult simulate_cache(const std::vector<int>& trace,
                              const std::vector<double>& weight,
                              double capacity, const EvictionPolicy& policy) {
  CacheSimResult result;
  // next_use_at[i] = position of the next access of trace[i] after i.
  std::vector<std::int64_t> next_use_at(trace.size());
  {
    std::map<int, std::int64_t> upcoming;
    for (std::int64_t i = static_cast<std::int64_t>(trace.size()) - 1; i >= 0;
         --i) {
      const auto it = upcoming.find(trace[i]);
      next_use_at[i] = it == upcoming.end() ? kNoNextUse : it->second;
      upcoming[trace[i]] = i;
    }
  }
  std::set<int> cache;
  std::map<int, std::int64_t> next_use, last_active;
  double used = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const int item = trace[i];
    last_active[item] = static_cast<std::int64_t>(i);
    next_use[item] = next_use_at[i];
    if (cache.count(item)) {
      ++result.hits;
      continue;
    }
    ++result.misses;
    result.loaded_weight += weight[item];
    while (used + weight[item] > capacity && !cache.empty()) {
      std::vector<VictimInfo> candidates;
      candidates.reserve(cache.size());
      for (int in_cache : cache) {
        candidates.push_back(
            {in_cache, next_use[in_cache], last_active[in_cache]});
      }
      const NodeId victim = policy.choose_victim(candidates);
      cache.erase(static_cast<int>(victim));
      used -= weight[victim];
    }
    assert(used + weight[item] <= capacity + 1e-9 && "item larger than cache");
    cache.insert(item);
    used += weight[item];
  }
  return result;
}

std::size_t min_misses_unit_weights(const std::vector<int>& trace,
                                    std::size_t capacity) {
  // Bélády is optimal for unit weights; reuse the simulator.
  int max_item = 0;
  for (int item : trace) max_item = std::max(max_item, item);
  const std::vector<double> weights(static_cast<std::size_t>(max_item) + 1,
                                    1.0);
  const ClairvoyantPolicy policy;
  return simulate_cache(trace, weights, static_cast<double>(capacity), policy)
      .misses;
}

}  // namespace mbsp
