#include "src/cache/policy.hpp"

#include <cassert>

namespace mbsp {

NodeId ClairvoyantPolicy::choose_victim(
    std::span<const VictimInfo> candidates) const {
  assert(!candidates.empty());
  const VictimInfo* best = &candidates[0];
  for (const VictimInfo& c : candidates) {
    if (c.next_use > best->next_use ||
        (c.next_use == best->next_use && c.node < best->node)) {
      best = &c;
    }
  }
  return best->node;
}

NodeId LruPolicy::choose_victim(std::span<const VictimInfo> candidates) const {
  assert(!candidates.empty());
  const VictimInfo* best = &candidates[0];
  for (const VictimInfo& c : candidates) {
    // Dead values always go first; otherwise least recently active.
    const bool c_dead = c.next_use == kNoNextUse;
    const bool b_dead = best->next_use == kNoNextUse;
    if (c_dead != b_dead) {
      if (c_dead) best = &c;
      continue;
    }
    if (c.last_active < best->last_active ||
        (c.last_active == best->last_active && c.node < best->node)) {
      best = &c;
    }
  }
  return best->node;
}

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kClairvoyant:
      return std::make_unique<ClairvoyantPolicy>();
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>();
  }
  return nullptr;
}

}  // namespace mbsp
