#pragma once
// Stand-alone weighted cache simulator over an access trace. Used to unit
// test the eviction policies in isolation (miss counts, Bélády optimality
// on uniform weights) independently of the scheduling machinery.

#include <vector>

#include "src/cache/policy.hpp"

namespace mbsp {

struct CacheSimResult {
  std::size_t hits = 0;
  std::size_t misses = 0;
  double loaded_weight = 0;  ///< total weight brought in on misses
};

/// Simulates accesses `trace[i]` (item ids) against a cache of capacity
/// `capacity` with per-item weights `weight`. On a miss the item is
/// inserted, evicting policy-chosen victims while over capacity.
CacheSimResult simulate_cache(const std::vector<int>& trace,
                              const std::vector<double>& weight,
                              double capacity, const EvictionPolicy& policy);

/// Minimum possible miss count for unit weights and integer capacity
/// (Bélády's algorithm, used as the test oracle).
std::size_t min_misses_unit_weights(const std::vector<int>& trace,
                                    std::size_t capacity);

}  // namespace mbsp
