#include "src/twostage/two_stage.hpp"

#include <cassert>
#include <stdexcept>

#include "src/bsp/cilk_scheduler.hpp"
#include "src/bsp/dfs_scheduler.hpp"
#include "src/bsp/greedy_scheduler.hpp"
#include "src/bsp/refined_scheduler.hpp"
#include "src/twostage/memory_completion.hpp"

namespace mbsp {

TwoStageResult two_stage_schedule(const MbspInstance& inst,
                                  BspScheduler& stage1, PolicyKind stage2) {
  TwoStageResult out;
  out.bsp = stage1.schedule(inst.dag, inst.arch);
  const BspValidation bsp_ok =
      validate_bsp(inst.dag, inst.arch.num_processors, out.bsp);
  if (!bsp_ok) {
    throw std::logic_error("stage-1 scheduler produced an invalid BSP "
                           "schedule: " + bsp_ok.error);
  }
  out.plan = plan_from_bsp(inst.dag, out.bsp, inst.arch.num_processors);
  const PlanValidation plan_ok = validate_plan(inst.dag, out.plan);
  if (!plan_ok) {
    throw std::logic_error("BSP-derived compute plan invalid: " +
                           plan_ok.error);
  }
  out.mbsp = complete_memory(inst, out.plan, stage2);
  return out;
}

TwoStageResult run_baseline(const MbspInstance& inst, BaselineKind kind,
                            double stage1_budget_ms) {
  switch (kind) {
    case BaselineKind::kGreedyClairvoyant: {
      GreedyBspScheduler stage1;
      return two_stage_schedule(inst, stage1, PolicyKind::kClairvoyant);
    }
    case BaselineKind::kCilkLru: {
      CilkScheduler stage1;
      return two_stage_schedule(inst, stage1, PolicyKind::kLru);
    }
    case BaselineKind::kRefinedClairvoyant: {
      RefinedBspScheduler::Params params;
      params.budget_ms = stage1_budget_ms;
      RefinedBspScheduler stage1(params);
      return two_stage_schedule(inst, stage1, PolicyKind::kClairvoyant);
    }
    case BaselineKind::kDfsClairvoyant: {
      DfsScheduler stage1;
      return two_stage_schedule(inst, stage1, PolicyKind::kClairvoyant);
    }
  }
  throw std::logic_error("unknown baseline kind");
}

std::string baseline_name(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kGreedyClairvoyant: return "bspg+clairvoyant";
    case BaselineKind::kCilkLru: return "cilk+lru";
    case BaselineKind::kRefinedClairvoyant: return "ilp-bsp+clairvoyant";
    case BaselineKind::kDfsClairvoyant: return "dfs+clairvoyant";
  }
  return "?";
}

}  // namespace mbsp
