#pragma once
// Memory completion: turns a ComputePlan (fixed COMPUTE occurrences) into a
// full, valid MBSP schedule by deciding every LOAD / SAVE / DELETE and the
// splitting of plan supersteps into MBSP supersteps. This implements the
// conversion described in Section 4 of the paper:
//
//   "we form new supersteps for MBSP by splitting each BSP compute phase
//    into maximally long segments of compute steps that can still be
//    executed without a new I/O operation [...] always loading the new
//    values needed for the next superstep, and evicting e.g. the least
//    recently used values when required by the memory constraint."
//
// Guarantees (checked by tests against validate()):
//  * a value is never lost: evicting a red value that is still needed and
//    has no blue pebble first SAVEs it (lazy save-before-evict);
//  * values computed for consumers on other processors (and sinks) are
//    saved in their computing superstep — the first opportunity, which is
//    also what the asynchronous Gamma function rewards;
//  * dead values (no further use, considering upcoming recomputation) are
//    deleted eagerly, as in the paper's implementation;
//  * the per-processor memory bound holds after every operation, provided
//    every processor's capacity (Machine::memory(p); fast_memory on the
//    uniform machine) is at least r0 (min_memory_r0).
//
// The eviction *choice* is delegated to an EvictionPolicy (clairvoyant or
// LRU), which is stage 2's only degree of freedom in the paper.

#include <memory>

#include "src/cache/policy.hpp"
#include "src/model/schedule.hpp"
#include "src/model/validate.hpp"
#include "src/twostage/compute_plan.hpp"

namespace mbsp {

/// Completes `plan` into a full MBSP schedule. The plan must satisfy
/// validate_plan(); every processor's memory capacity must be at least
/// min_memory_r0(dag).
MbspSchedule complete_memory(const MbspInstance& inst, const ComputePlan& plan,
                             const EvictionPolicy& policy);

inline MbspSchedule complete_memory(const MbspInstance& inst,
                                    const ComputePlan& plan,
                                    PolicyKind kind) {
  return complete_memory(inst, plan, *make_policy(kind));
}

}  // namespace mbsp
