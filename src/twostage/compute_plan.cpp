#include "src/twostage/compute_plan.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace mbsp {

int ComputePlan::num_supersteps() const {
  int count = 0;
  for (const auto& proc_seq : seq) {
    if (!proc_seq.empty()) count = std::max(count, proc_seq.back().superstep + 1);
  }
  return count;
}

std::size_t ComputePlan::total_computes() const {
  std::size_t total = 0;
  for (const auto& proc_seq : seq) total += proc_seq.size();
  return total;
}

PlanValidation validate_plan(const ComputeDag& dag, const ComputePlan& plan) {
  auto fail = [](std::string msg) { return PlanValidation{false, std::move(msg)}; };
  if (static_cast<int>(plan.seq.size()) != plan.num_procs) {
    return fail("plan.seq size differs from num_procs");
  }
  const NodeId n = dag.num_nodes();
  // earliest_done[v] = smallest superstep in which some occurrence of v
  // completes (cross-processor availability starts one superstep later).
  std::vector<int> earliest_done(n, -1);
  for (const auto& proc_seq : plan.seq) {
    int last_step = 0;
    for (const PlannedCompute& pc : proc_seq) {
      if (pc.node < 0 || pc.node >= n) return fail("bad node id in plan");
      if (dag.is_source(pc.node)) {
        return fail("plan computes source node " + std::to_string(pc.node));
      }
      if (pc.superstep < last_step) {
        return fail("superstep indices decrease along a processor sequence");
      }
      last_step = pc.superstep;
      if (earliest_done[pc.node] == -1 ||
          pc.superstep < earliest_done[pc.node]) {
        earliest_done[pc.node] = pc.superstep;
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!dag.is_source(v) && earliest_done[v] == -1) {
      return fail("node " + std::to_string(v) + " is never computed");
    }
  }
  for (int p = 0; p < plan.num_procs; ++p) {
    std::vector<int> computed_here_at(n, -1);  // superstep of first local occ.
    std::vector<std::size_t> local_pos(n, SIZE_MAX);
    for (std::size_t i = 0; i < plan.seq[p].size(); ++i) {
      const PlannedCompute& pc = plan.seq[p][i];
      for (NodeId u : dag.parents(pc.node)) {
        if (dag.is_source(u)) continue;
        const bool local_earlier = local_pos[u] < i;
        const bool remote_earlier =
            earliest_done[u] >= 0 && earliest_done[u] < pc.superstep;
        if (!local_earlier && !remote_earlier) {
          return fail("occurrence of node " + std::to_string(pc.node) +
                      " on processor " + std::to_string(p) +
                      " has unavailable parent " + std::to_string(u));
        }
      }
      if (local_pos[pc.node] == SIZE_MAX) {
        local_pos[pc.node] = i;
        computed_here_at[pc.node] = pc.superstep;
      } else {
        local_pos[pc.node] = i;  // latest occurrence also fine
      }
    }
  }
  return {};
}

ComputePlan plan_from_bsp(const ComputeDag& dag, const BspSchedule& bsp,
                          int num_procs) {
  ComputePlan plan;
  plan.num_procs = num_procs;
  plan.seq.resize(num_procs);
  for (NodeId v : bsp.order) {
    if (dag.is_source(v)) continue;
    plan.seq[bsp.proc[v]].push_back({v, bsp.superstep[v]});
  }
  normalize_supersteps(plan);
  return plan;
}

void normalize_supersteps(ComputePlan& plan) {
  std::set<int> used;
  for (const auto& proc_seq : plan.seq) {
    for (const PlannedCompute& pc : proc_seq) used.insert(pc.superstep);
  }
  std::map<int, int> renumber;
  int next = 0;
  for (int s : used) renumber[s] = next++;
  for (auto& proc_seq : plan.seq) {
    for (PlannedCompute& pc : proc_seq) pc.superstep = renumber[pc.superstep];
  }
}

}  // namespace mbsp
