#include "src/twostage/compute_plan.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace mbsp {

int ComputePlan::num_supersteps() const {
  int count = 0;
  for (const auto& proc_seq : seq) {
    if (!proc_seq.empty()) count = std::max(count, proc_seq.back().superstep + 1);
  }
  return count;
}

std::size_t ComputePlan::total_computes() const {
  std::size_t total = 0;
  for (const auto& proc_seq : seq) total += proc_seq.size();
  return total;
}

PlanValidation validate_plan(const ComputeDag& dag, const ComputePlan& plan) {
  auto fail = [](std::string msg) { return PlanValidation{false, std::move(msg)}; };
  if (static_cast<int>(plan.seq.size()) != plan.num_procs) {
    return fail("plan.seq size differs from num_procs");
  }
  const NodeId n = dag.num_nodes();
  // earliest_done[v] = smallest superstep in which some occurrence of v
  // completes (cross-processor availability starts one superstep later).
  std::vector<int> earliest_done(n, -1);
  for (const auto& proc_seq : plan.seq) {
    int last_step = 0;
    for (const PlannedCompute& pc : proc_seq) {
      if (pc.node < 0 || pc.node >= n) return fail("bad node id in plan");
      if (dag.is_source(pc.node)) {
        return fail("plan computes source node " + std::to_string(pc.node));
      }
      if (pc.superstep < last_step) {
        return fail("superstep indices decrease along a processor sequence");
      }
      last_step = pc.superstep;
      if (earliest_done[pc.node] == -1 ||
          pc.superstep < earliest_done[pc.node]) {
        earliest_done[pc.node] = pc.superstep;
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (!dag.is_source(v) && earliest_done[v] == -1) {
      return fail("node " + std::to_string(v) + " is never computed");
    }
  }
  for (int p = 0; p < plan.num_procs; ++p) {
    std::vector<int> computed_here_at(n, -1);  // superstep of first local occ.
    std::vector<std::size_t> local_pos(n, SIZE_MAX);
    for (std::size_t i = 0; i < plan.seq[p].size(); ++i) {
      const PlannedCompute& pc = plan.seq[p][i];
      for (NodeId u : dag.parents(pc.node)) {
        if (dag.is_source(u)) continue;
        const bool local_earlier = local_pos[u] < i;
        const bool remote_earlier =
            earliest_done[u] >= 0 && earliest_done[u] < pc.superstep;
        if (!local_earlier && !remote_earlier) {
          return fail("occurrence of node " + std::to_string(pc.node) +
                      " on processor " + std::to_string(p) +
                      " has unavailable parent " + std::to_string(u));
        }
      }
      if (local_pos[pc.node] == SIZE_MAX) {
        local_pos[pc.node] = i;
        computed_here_at[pc.node] = pc.superstep;
      } else {
        local_pos[pc.node] = i;  // latest occurrence also fine
      }
    }
  }
  return {};
}

ComputePlan plan_from_bsp(const ComputeDag& dag, const BspSchedule& bsp,
                          int num_procs) {
  ComputePlan plan;
  plan.num_procs = num_procs;
  plan.seq.resize(num_procs);
  for (NodeId v : bsp.order) {
    if (dag.is_source(v)) continue;
    plan.seq[bsp.proc[v]].push_back({v, bsp.superstep[v]});
  }
  normalize_supersteps(plan);
  return plan;
}

void normalize_supersteps(ComputePlan& plan) {
  std::set<int> used;
  for (const auto& proc_seq : plan.seq) {
    for (const PlannedCompute& pc : proc_seq) used.insert(pc.superstep);
  }
  std::map<int, int> renumber;
  int next = 0;
  for (int s : used) renumber[s] = next++;
  for (auto& proc_seq : plan.seq) {
    for (PlannedCompute& pc : proc_seq) pc.superstep = renumber[pc.superstep];
  }
}

bool has_dense_supersteps(const ComputePlan& plan) {
  const int k = plan.num_supersteps();
  std::vector<char> seen(static_cast<std::size_t>(k), 0);
  for (const auto& proc_seq : plan.seq) {
    for (const PlannedCompute& pc : proc_seq) {
      if (pc.superstep < 0 || pc.superstep >= k) return false;
      seen[static_cast<std::size_t>(pc.superstep)] = 1;
    }
  }
  for (char s : seen) {
    if (!s) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Delta application.

void apply_delta_op(ComputePlan& plan, const PlanDeltaOp& op) {
  auto& seq = plan.seq[op.proc];
  switch (op.kind) {
    case PlanDeltaOpKind::kInsert:
      seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(op.pos), op.pc);
      break;
    case PlanDeltaOpKind::kErase:
      seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(op.pos));
      break;
    case PlanDeltaOpKind::kSetNode:
      seq[op.pos].node = op.pc.node;
      break;
    case PlanDeltaOpKind::kMergeStep:
      for (int p = 0; p < plan.num_procs; ++p) {
        auto& s = plan.seq[p];
        for (std::size_t i = op.cuts[static_cast<std::size_t>(p)];
             i < s.size(); ++i) {
          --s[i].superstep;
        }
      }
      break;
    case PlanDeltaOpKind::kSplitStep:
      for (int p = 0; p < plan.num_procs; ++p) {
        auto& s = plan.seq[p];
        for (std::size_t i = op.cuts[static_cast<std::size_t>(p)];
             i < s.size(); ++i) {
          ++s[i].superstep;
        }
      }
      break;
  }
}

void undo_delta_op(ComputePlan& plan, const PlanDeltaOp& op) {
  auto& seq = plan.seq[op.proc];
  switch (op.kind) {
    case PlanDeltaOpKind::kInsert:
      seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(op.pos));
      break;
    case PlanDeltaOpKind::kErase:
      seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(op.pos), op.pc);
      break;
    case PlanDeltaOpKind::kSetNode:
      seq[op.pos].node = op.old_node;
      break;
    case PlanDeltaOpKind::kMergeStep:
      for (int p = 0; p < plan.num_procs; ++p) {
        auto& s = plan.seq[p];
        for (std::size_t i = op.cuts[static_cast<std::size_t>(p)];
             i < s.size(); ++i) {
          ++s[i].superstep;
        }
      }
      break;
    case PlanDeltaOpKind::kSplitStep:
      for (int p = 0; p < plan.num_procs; ++p) {
        auto& s = plan.seq[p];
        for (std::size_t i = op.cuts[static_cast<std::size_t>(p)];
             i < s.size(); ++i) {
          --s[i].superstep;
        }
      }
      break;
  }
}

void undo_delta(ComputePlan& plan, const PlanDelta& delta) {
  for (auto it = delta.ops.rbegin(); it != delta.ops.rend(); ++it) {
    undo_delta_op(plan, *it);
  }
}

// ---------------------------------------------------------------------------
// PlanOccurrenceIndex.

void PlanOccurrenceIndex::attach(const ComputeDag* dag,
                                 const ComputePlan* plan) {
  dag_ = dag;
  plan_ = plan;
  const std::size_t n = static_cast<std::size_t>(dag->num_nodes());
  const std::size_t P = static_cast<std::size_t>(plan->num_procs);
  node_count_.assign(n, 0);
  done_counts_.assign(n, {});
  proc_committed_.assign(P, {});
  proc_candidate_.assign(P, {});
  committed_valid_.assign(P, 0);
  candidate_built_.assign(P, 0);
  proc_touched_.assign(P, 0);
  in_move_ = false;
  proc_step_count_.assign(P, {});
  counts_dirty_ = true;
  ensure_counts();
}

void PlanOccurrenceIndex::begin_move() { in_move_ = true; }

void PlanOccurrenceIndex::commit_move() {
  for (std::size_t p = 0; p < proc_touched_.size(); ++p) {
    if (!proc_touched_[p]) continue;
    std::swap(proc_committed_[p], proc_candidate_[p]);
    committed_valid_[p] = candidate_built_[p];
    candidate_built_[p] = 0;
    proc_touched_[p] = 0;
  }
  in_move_ = false;
}

void PlanOccurrenceIndex::rollback_move() {
  for (std::size_t p = 0; p < proc_touched_.size(); ++p) {
    if (!proc_touched_[p]) continue;
    candidate_built_[p] = 0;
    proc_touched_[p] = 0;
  }
  in_move_ = false;
}

void PlanOccurrenceIndex::touch_proc(int p) {
  if (in_move_) {
    proc_touched_[static_cast<std::size_t>(p)] = 1;
    candidate_built_[static_cast<std::size_t>(p)] = 0;
  } else {
    // Edits outside a move transaction invalidate the committed view.
    committed_valid_[static_cast<std::size_t>(p)] = 0;
  }
}

void PlanOccurrenceIndex::rebuild_counts() {
  std::fill(node_count_.begin(), node_count_.end(), 0);
  for (auto& dc : done_counts_) dc.clear();
  num_supersteps_ = plan_->num_supersteps();
  step_count_.assign(static_cast<std::size_t>(num_supersteps_), 0);
  for (int p = 0; p < plan_->num_procs; ++p) {
    auto& psc = proc_step_count_[static_cast<std::size_t>(p)];
    psc.assign(static_cast<std::size_t>(num_supersteps_), 0);
    for (const PlannedCompute& pc : plan_->seq[static_cast<std::size_t>(p)]) {
      ++node_count_[static_cast<std::size_t>(pc.node)];
      ++step_count_[static_cast<std::size_t>(pc.superstep)];
      ++psc[static_cast<std::size_t>(pc.superstep)];
      bump_done(pc.node, pc.superstep, +1);
    }
  }
  counts_dirty_ = false;
}

void PlanOccurrenceIndex::bump_done(NodeId v, int step, int delta) {
  auto& dc = done_counts_[static_cast<std::size_t>(v)];
  auto it = std::lower_bound(
      dc.begin(), dc.end(), step,
      [](const std::pair<int, long>& e, int s) { return e.first < s; });
  if (it != dc.end() && it->first == step) {
    it->second += delta;
    if (it->second == 0) dc.erase(it);
  } else {
    dc.insert(it, {step, static_cast<long>(delta)});
  }
}

void PlanOccurrenceIndex::bump_step(int p, int step, int delta) {
  const std::size_t s = static_cast<std::size_t>(step);
  if (delta > 0) {
    if (s >= step_count_.size()) {
      step_count_.resize(s + 1, 0);
      for (auto& psc : proc_step_count_) psc.resize(s + 1, 0);
    }
    if (step >= num_supersteps_) num_supersteps_ = step + 1;
  }
  step_count_[s] += delta;
  proc_step_count_[static_cast<std::size_t>(p)][s] += delta;
  // An emptied top superstep shrinks K (normalize_supersteps semantics:
  // no renumbering needed, the index range just contracts).
  while (num_supersteps_ > 0 &&
         step_count_[static_cast<std::size_t>(num_supersteps_ - 1)] == 0) {
    --num_supersteps_;
  }
}

void PlanOccurrenceIndex::on_apply(const PlanDeltaOp& op) {
  switch (op.kind) {
    case PlanDeltaOpKind::kInsert:
      if (!counts_dirty_) {
        ++node_count_[static_cast<std::size_t>(op.pc.node)];
        bump_step(op.proc, op.pc.superstep, +1);
        bump_done(op.pc.node, op.pc.superstep, +1);
      }
      touch_proc(op.proc);
      break;
    case PlanDeltaOpKind::kErase:
      if (!counts_dirty_) {
        --node_count_[static_cast<std::size_t>(op.pc.node)];
        bump_step(op.proc, op.pc.superstep, -1);
        bump_done(op.pc.node, op.pc.superstep, -1);
      }
      touch_proc(op.proc);
      break;
    case PlanDeltaOpKind::kSetNode:
      if (!counts_dirty_) {
        --node_count_[static_cast<std::size_t>(op.old_node)];
        ++node_count_[static_cast<std::size_t>(op.pc.node)];
        const int step =
            plan_->seq[static_cast<std::size_t>(op.proc)][op.pos].superstep;
        bump_done(op.old_node, step, -1);
        bump_done(op.pc.node, step, +1);
      }
      touch_proc(op.proc);
      break;
    case PlanDeltaOpKind::kMergeStep:
    case PlanDeltaOpKind::kSplitStep:
      counts_dirty_ = true;
      for (int p = 0; p < plan_->num_procs; ++p) touch_proc(p);
      break;
  }
}

void PlanOccurrenceIndex::on_undo(const PlanDeltaOp& op) {
  // The inverse bookkeeping of on_apply; the plan has already been
  // restored when this runs, so kSetNode reads the restored superstep.
  switch (op.kind) {
    case PlanDeltaOpKind::kInsert:
      if (!counts_dirty_) {
        --node_count_[static_cast<std::size_t>(op.pc.node)];
        bump_step(op.proc, op.pc.superstep, -1);
        bump_done(op.pc.node, op.pc.superstep, -1);
      }
      touch_proc(op.proc);
      break;
    case PlanDeltaOpKind::kErase:
      if (!counts_dirty_) {
        ++node_count_[static_cast<std::size_t>(op.pc.node)];
        bump_step(op.proc, op.pc.superstep, +1);
        bump_done(op.pc.node, op.pc.superstep, +1);
      }
      touch_proc(op.proc);
      break;
    case PlanDeltaOpKind::kSetNode:
      if (!counts_dirty_) {
        ++node_count_[static_cast<std::size_t>(op.old_node)];
        --node_count_[static_cast<std::size_t>(op.pc.node)];
        const int step =
            plan_->seq[static_cast<std::size_t>(op.proc)][op.pos].superstep;
        bump_done(op.old_node, step, +1);
        bump_done(op.pc.node, step, -1);
      }
      touch_proc(op.proc);
      break;
    case PlanDeltaOpKind::kMergeStep:
    case PlanDeltaOpKind::kSplitStep:
      counts_dirty_ = true;
      for (int p = 0; p < plan_->num_procs; ++p) touch_proc(p);
      break;
  }
}

int PlanOccurrenceIndex::num_supersteps() {
  ensure_counts();
  return num_supersteps_;
}

long PlanOccurrenceIndex::node_count(NodeId v) {
  ensure_counts();
  return node_count_[static_cast<std::size_t>(v)];
}

int PlanOccurrenceIndex::earliest_done(NodeId v) {
  ensure_counts();
  const auto& dc = done_counts_[static_cast<std::size_t>(v)];
  return dc.empty() ? -1 : dc.front().first;
}

long PlanOccurrenceIndex::step_count(int s) {
  ensure_counts();
  return s < num_supersteps_ ? step_count_[static_cast<std::size_t>(s)] : 0;
}

long PlanOccurrenceIndex::proc_step_count(int p, int s) {
  ensure_counts();
  if (s >= num_supersteps_) return 0;
  return proc_step_count_[static_cast<std::size_t>(p)][static_cast<std::size_t>(s)];
}

int PlanOccurrenceIndex::gap_step() {
  ensure_counts();
  for (int s = 0; s < num_supersteps_; ++s) {
    if (step_count_[static_cast<std::size_t>(s)] == 0) return s;
  }
  return -1;
}

void PlanOccurrenceIndex::rebuild_into(int p, ProcPositions& pp) {
  const std::size_t n = static_cast<std::size_t>(dag_->num_nodes());
  const auto& seq = plan_->seq[static_cast<std::size_t>(p)];
  pp.comp_start.assign(n + 1, 0);
  pp.use_start.assign(n + 1, 0);
  for (const PlannedCompute& pc : seq) {
    ++pp.comp_start[static_cast<std::size_t>(pc.node) + 1];
    for (NodeId u : dag_->parents(pc.node)) {
      ++pp.use_start[static_cast<std::size_t>(u) + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    pp.comp_start[v + 1] += pp.comp_start[v];
    pp.use_start[v + 1] += pp.use_start[v];
  }
  pp.comp_items.assign(static_cast<std::size_t>(pp.comp_start[n]), 0);
  pp.use_items.assign(static_cast<std::size_t>(pp.use_start[n]), 0);
  std::vector<std::int64_t> comp_fill(pp.comp_start.begin(),
                                      pp.comp_start.end() - 1);
  std::vector<std::int64_t> use_fill(pp.use_start.begin(),
                                     pp.use_start.end() - 1);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const PlannedCompute& pc = seq[i];
    pp.comp_items[static_cast<std::size_t>(
        comp_fill[static_cast<std::size_t>(pc.node)]++)] =
        static_cast<std::int64_t>(i);
    for (NodeId u : dag_->parents(pc.node)) {
      pp.use_items[static_cast<std::size_t>(
          use_fill[static_cast<std::size_t>(u)]++)] =
          static_cast<std::int64_t>(i);
    }
  }
}

const PlanOccurrenceIndex::ProcPositions& PlanOccurrenceIndex::proc_positions(
    int p) {
  const std::size_t p_ = static_cast<std::size_t>(p);
  if (in_move_ && proc_touched_[p_]) {
    if (!candidate_built_[p_]) {
      rebuild_into(p, proc_candidate_[p_]);
      candidate_built_[p_] = 1;
    }
    return proc_candidate_[p_];
  }
  if (!committed_valid_[p_]) {
    rebuild_into(p, proc_committed_[p_]);
    committed_valid_[p_] = 1;
  }
  return proc_committed_[p_];
}

bool PlanOccurrenceIndex::has_local_comp_before(int p, NodeId u,
                                                std::size_t pos) {
  const ProcPositions& pp = proc_positions(p);
  const std::size_t lo = static_cast<std::size_t>(
      pp.comp_start[static_cast<std::size_t>(u)]);
  // The first occurrence position of u on p (positions are sorted).
  if (lo == static_cast<std::size_t>(
                pp.comp_start[static_cast<std::size_t>(u) + 1])) {
    return false;
  }
  return pp.comp_items[lo] < static_cast<std::int64_t>(pos);
}

}  // namespace mbsp
