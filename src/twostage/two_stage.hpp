#pragma once
// The two-stage baseline of Section 4: a memory-oblivious BSP scheduler
// (stage 1) followed by memory completion under an eviction policy
// (stage 2). The paper's main baseline is GreedyBspScheduler + clairvoyant;
// the "practical" baseline is CilkScheduler + LRU; the strong baseline is
// RefinedBspScheduler + clairvoyant.

#include <memory>
#include <string>

#include "src/bsp/bsp_schedule.hpp"
#include "src/cache/policy.hpp"
#include "src/model/schedule.hpp"
#include "src/twostage/compute_plan.hpp"

namespace mbsp {

struct TwoStageResult {
  BspSchedule bsp;      ///< stage-1 schedule
  ComputePlan plan;     ///< plan derived from it
  MbspSchedule mbsp;    ///< completed MBSP schedule
};

/// Runs both stages. The BSP schedule is validated in between; the
/// resulting MBSP schedule is valid by construction (tests re-check).
TwoStageResult two_stage_schedule(const MbspInstance& inst,
                                  BspScheduler& stage1, PolicyKind stage2);

/// Convenience for the paper's three named baselines.
enum class BaselineKind {
  kGreedyClairvoyant,  ///< main baseline: BSPg + clairvoyant
  kCilkLru,            ///< practical baseline: Cilk + LRU
  kRefinedClairvoyant, ///< strong baseline: "ILP-BSP" + clairvoyant
  kDfsClairvoyant,     ///< P=1 pebbling baseline: DFS + clairvoyant
};

TwoStageResult run_baseline(const MbspInstance& inst, BaselineKind kind,
                            double stage1_budget_ms = 300);

std::string baseline_name(BaselineKind kind);

}  // namespace mbsp
