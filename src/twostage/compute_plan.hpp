#pragma once
// A compute plan fixes the COMPUTE operations of an MBSP schedule — which
// node occurrences run on which processor, in which (BSP-level) superstep,
// in which order — while leaving every memory-management decision (loads,
// saves, deletes, the splitting into MBSP supersteps) open. It is the
// interface between stage 1 and stage 2 of the two-stage approach, and
// also the search space of the holistic LNS scheduler (which, unlike
// stage 1, may include *recomputation*: several occurrences of a node).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/bsp/bsp_schedule.hpp"
#include "src/model/instance.hpp"

namespace mbsp {

struct PlannedCompute {
  NodeId node = kInvalidNode;
  int superstep = 0;  ///< plan-level superstep (BSP phase index)

  bool operator==(const PlannedCompute&) const = default;
};

struct ComputePlan {
  int num_procs = 1;
  /// Per processor: compute occurrences in execution order; superstep
  /// indices must be nondecreasing.
  std::vector<std::vector<PlannedCompute>> seq;

  int num_supersteps() const;
  std::size_t total_computes() const;
};

struct PlanValidation {
  bool ok = true;
  std::string error;
  explicit operator bool() const { return ok; }
};

/// Checks that the plan is realizable:
///  * occurrences only of non-source nodes, supersteps nondecreasing;
///  * every non-source node is computed at least once;
///  * each occurrence's parents are available: a source, or computed
///    earlier on the same processor in the same or earlier superstep, or
///    computed on *any* processor in a strictly earlier superstep.
PlanValidation validate_plan(const ComputeDag& dag, const ComputePlan& plan);

/// Lifts a (validated) BSP schedule to a plan (no recomputation).
ComputePlan plan_from_bsp(const ComputeDag& dag, const BspSchedule& bsp,
                          int num_procs);

/// Renumbers supersteps to 0..k-1 preserving order, dropping gaps.
void normalize_supersteps(ComputePlan& plan);

/// True when superstep indices are already dense 0..k-1 (i.e.
/// normalize_supersteps would be the identity). The incremental LNS engine
/// maintains this as an invariant so it can skip normalization entirely.
bool has_dense_supersteps(const ComputePlan& plan);

// ---------------------------------------------------------------------------
// Plan deltas: the O(delta) edit language of the incremental LNS engine.
// Every LNS move is expressed as a short sequence of PlanDeltaOps applied
// to the plan *in place*; the same ops, replayed inverted in reverse
// order, restore the plan bitwise (apply/undo instead of copy/discard).

enum class PlanDeltaOpKind {
  kInsert,     ///< insert `pc` at seq[proc][pos]
  kErase,      ///< erase seq[proc][pos] (== pc, recorded for the undo)
  kSetNode,    ///< seq[proc][pos].node: old_node -> new_node
  kMergeStep,  ///< superstep -= 1 for every occurrence at pos >= cuts[p]
  kSplitStep,  ///< superstep += 1 for every occurrence at pos >= cuts[p]
};

/// One reversible edit. The structural ops (merge/split; a gap close after
/// a move that emptied a superstep is a merge) carry per-processor cut
/// positions: by the nondecreasing-superstep invariant the affected
/// occurrences form a suffix of every processor sequence, so "shift the
/// suffix" is exact and O(suffix) to apply or undo.
struct PlanDeltaOp {
  PlanDeltaOpKind kind = PlanDeltaOpKind::kInsert;
  int proc = 0;
  std::size_t pos = 0;
  PlannedCompute pc;        ///< insert/erase payload
  NodeId old_node = kInvalidNode;  ///< kSetNode only
  std::vector<std::size_t> cuts;   ///< kMergeStep / kSplitStep only
};

/// A move's worth of ops, applied in order. `structural` marks superstep
/// renumbering (merge/split/gap close): incremental evaluation falls back
/// to a full evaluation for those.
struct PlanDelta {
  std::vector<PlanDeltaOp> ops;
  bool structural = false;

  void clear() {
    ops.clear();
    structural = false;
  }
};

/// Applies one op to the plan in place.
void apply_delta_op(ComputePlan& plan, const PlanDeltaOp& op);

/// Applies the inverse of one op (exact undo of apply_delta_op).
void undo_delta_op(ComputePlan& plan, const PlanDeltaOp& op);

/// Undoes a whole delta (inverse ops in reverse order).
void undo_delta(ComputePlan& plan, const PlanDelta& delta);

// ---------------------------------------------------------------------------
// Occurrence index: per-superstep and per-(proc, node) lookups maintained
// across deltas, so the LNS move generators and the incremental evaluator
// stop scanning the plan linearly. Counts are updated eagerly (O(1) per
// op); the heavyweight per-processor position lists are rebuilt lazily,
// only for processors whose sequence actually changed.

class PlanOccurrenceIndex {
 public:
  /// Sorted occurrence / use positions of every node on one processor,
  /// CSR-flattened. Positions refer to the current seq[p]; any delta op
  /// touching p invalidates the view (it is rebuilt on next access).
  struct ProcPositions {
    std::vector<std::int64_t> comp_start;  ///< n+1 offsets into comp_items
    std::vector<std::int64_t> comp_items;
    std::vector<std::int64_t> use_start;   ///< n+1 offsets into use_items
    std::vector<std::int64_t> use_items;
  };

  void attach(const ComputeDag* dag, const ComputePlan* plan);

  /// Eager bookkeeping around a delta op. Call on_apply *after* the op has
  /// been applied to the plan, on_undo *after* it has been undone.
  void on_apply(const PlanDeltaOp& op);
  void on_undo(const PlanDeltaOp& op);

  /// Move transaction brackets (mirroring the evaluator's): between
  /// begin_move and commit_move/rollback_move, position queries serve a
  /// candidate buffer built from the edited plan while the committed
  /// buffer stays intact — so a rollback costs nothing and the next
  /// committed query needs no rebuild.
  void begin_move();
  void commit_move();
  void rollback_move();

  /// Accessors rebuild the count tables first when a structural op left
  /// them stale (lazily, O(total occurrences)).
  int num_supersteps();
  /// Total occurrences of node v across all processors.
  long node_count(NodeId v);
  /// Smallest superstep in which some occurrence of v completes (-1 when
  /// v is never computed).
  int earliest_done(NodeId v);
  /// Global occurrence count of superstep s.
  long step_count(int s);
  /// Occurrence count of superstep s on processor p.
  long proc_step_count(int p, int s);
  /// A superstep 0..K-2 that is globally empty (-1 if none): the caller
  /// must close the gap with a kMergeStep op to keep supersteps dense.
  /// (An emptied *top* superstep is not a gap; the count tables simply
  /// shrink, matching what normalize_supersteps would do.)
  int gap_step();

  /// Position lists for processor p (rebuilt here if p is dirty).
  const ProcPositions& proc_positions(int p);

  /// True iff node u has an occurrence on p strictly before position pos
  /// (the add_recompute "computed locally beforehand" test, O(log)).
  bool has_local_comp_before(int p, NodeId u, std::size_t pos);

 private:
  void ensure_counts() {
    if (counts_dirty_) rebuild_counts();
  }
  void rebuild_counts();
  void rebuild_into(int p, ProcPositions& out);
  void bump_done(NodeId v, int step, int delta);
  void bump_step(int p, int step, int delta);
  void touch_proc(int p);

  const ComputeDag* dag_ = nullptr;
  const ComputePlan* plan_ = nullptr;
  int num_supersteps_ = 0;
  std::vector<long> node_count_;
  std::vector<long> step_count_;              // global, size >= K
  std::vector<std::vector<long>> proc_step_count_;  // [p][s]
  // Per node: sorted (superstep, count) pairs over its occurrences; the
  // first entry is earliest_done. Flat vectors: occurrence multiplicity
  // per node is tiny.
  std::vector<std::vector<std::pair<int, long>>> done_counts_;
  // Double-buffered position lists: `committed` reflects the plan as of
  // the last commit; `candidate` is built on demand for processors
  // edited by the in-flight move. Rollback keeps `committed` valid.
  std::vector<ProcPositions> proc_committed_, proc_candidate_;
  std::vector<char> committed_valid_, candidate_built_, proc_touched_;
  bool in_move_ = false;
  bool counts_dirty_ = true;
};

}  // namespace mbsp
