#pragma once
// A compute plan fixes the COMPUTE operations of an MBSP schedule — which
// node occurrences run on which processor, in which (BSP-level) superstep,
// in which order — while leaving every memory-management decision (loads,
// saves, deletes, the splitting into MBSP supersteps) open. It is the
// interface between stage 1 and stage 2 of the two-stage approach, and
// also the search space of the holistic LNS scheduler (which, unlike
// stage 1, may include *recomputation*: several occurrences of a node).

#include <string>
#include <vector>

#include "src/bsp/bsp_schedule.hpp"
#include "src/model/instance.hpp"

namespace mbsp {

struct PlannedCompute {
  NodeId node = kInvalidNode;
  int superstep = 0;  ///< plan-level superstep (BSP phase index)

  bool operator==(const PlannedCompute&) const = default;
};

struct ComputePlan {
  int num_procs = 1;
  /// Per processor: compute occurrences in execution order; superstep
  /// indices must be nondecreasing.
  std::vector<std::vector<PlannedCompute>> seq;

  int num_supersteps() const;
  std::size_t total_computes() const;
};

struct PlanValidation {
  bool ok = true;
  std::string error;
  explicit operator bool() const { return ok; }
};

/// Checks that the plan is realizable:
///  * occurrences only of non-source nodes, supersteps nondecreasing;
///  * every non-source node is computed at least once;
///  * each occurrence's parents are available: a source, or computed
///    earlier on the same processor in the same or earlier superstep, or
///    computed on *any* processor in a strictly earlier superstep.
PlanValidation validate_plan(const ComputeDag& dag, const ComputePlan& plan);

/// Lifts a (validated) BSP schedule to a plan (no recomputation).
ComputePlan plan_from_bsp(const ComputeDag& dag, const BspSchedule& bsp,
                          int num_procs);

/// Renumbers supersteps to 0..k-1 preserving order, dropping gaps.
void normalize_supersteps(ComputePlan& plan);

}  // namespace mbsp
