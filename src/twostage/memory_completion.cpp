#include "src/twostage/memory_completion.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace mbsp {

namespace {

constexpr double kMemEps = 1e-9;
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

/// One planned maximal segment of computes on one processor, together with
/// the I/O that realizes it and the processor state after it.
struct SegmentPlan {
  std::vector<NodeId> loads;
  std::vector<NodeId> pre_saves;    // dirty upfront evictions (prev slot)
  std::vector<NodeId> pre_deletes;  // upfront evictions (prev slot)
  std::vector<PhaseOp> ops;         // computes + interleaved deletes
  std::vector<NodeId> post_saves;   // outputs needing a blue pebble
  std::vector<NodeId> post_deletes; // dead values dropped after the segment
  std::int64_t count = 0;           // number of plan entries consumed
  // State after the segment.
  std::vector<char> cache;
  double cache_weight = 0;
  std::vector<NodeId> made_blue;  // pre_saves + post_saves (commit order)
  std::unordered_map<NodeId, std::int64_t> touched;  // last_active updates
};

class Completer {
 public:
  Completer(const MbspInstance& inst, const ComputePlan& plan,
            const EvictionPolicy& policy)
      : inst_(inst), dag_(inst.dag), plan_(plan), policy_(policy),
        P_(plan.num_procs) {
    r_.resize(static_cast<std::size_t>(P_));
    for (int p = 0; p < P_; ++p) {
      r_[static_cast<std::size_t>(p)] = inst.arch.memory(p);
    }
    precompute();
  }

  MbspSchedule run();

 private:
  void precompute();
  std::optional<SegmentPlan> try_segment(int p, std::int64_t count) const;
  SegmentPlan plan_largest_segment(int p, int superstep) const;
  void commit(int p, const SegmentPlan& seg);

  /// Position (in seq[p]) of the next *need* of the current copy of v at or
  /// after `from`: the next use as a parent, unless v is recomputed on p
  /// before that use (then the current copy is not needed). kNever if none.
  std::int64_t effective_next_need(int p, NodeId v, std::int64_t from) const;

  bool save_required(NodeId v) const { return save_required_[v] != 0; }

  const MbspInstance& inst_;
  const ComputeDag& dag_;
  const ComputePlan& plan_;
  const EvictionPolicy& policy_;
  const int P_;
  std::vector<double> r_;  ///< per-proc capacity (uniform: all fast_memory)

  // Static plan indexes.
  std::vector<std::vector<std::vector<std::int64_t>>> use_pos_;   // [p][v]
  std::vector<std::vector<std::vector<std::int64_t>>> comp_pos_;  // [p][v]
  std::vector<char> save_required_;  // sink or used on a non-computing proc

  // Dynamic state.
  std::vector<std::vector<char>> cache_;
  std::vector<double> cache_weight_;
  std::vector<char> blue_;          // visible for loads staged this round
  std::vector<NodeId> pending_blue_;  // post_saves; visible next round
  std::vector<std::int64_t> pos_;
  std::vector<std::vector<std::int64_t>> last_active_;
};

void Completer::precompute() {
  const NodeId n = dag_.num_nodes();
  use_pos_.assign(P_, std::vector<std::vector<std::int64_t>>(n));
  comp_pos_.assign(P_, std::vector<std::vector<std::int64_t>>(n));
  for (int p = 0; p < P_; ++p) {
    for (std::size_t i = 0; i < plan_.seq[p].size(); ++i) {
      const NodeId v = plan_.seq[p][i].node;
      comp_pos_[p][v].push_back(static_cast<std::int64_t>(i));
      for (NodeId u : dag_.parents(v)) {
        use_pos_[p][u].push_back(static_cast<std::int64_t>(i));
      }
    }
  }
  save_required_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (dag_.is_source(v)) continue;
    if (dag_.is_sink(v)) {
      save_required_[v] = 1;
      continue;
    }
    // Used on some processor that is not the only computing processor.
    int computing = -1, computing_count = 0;
    for (int p = 0; p < P_; ++p) {
      if (!comp_pos_[p][v].empty()) {
        computing = p;
        ++computing_count;
      }
    }
    for (int p = 0; p < P_ && !save_required_[v]; ++p) {
      if (!use_pos_[p][v].empty() && (computing_count > 1 || p != computing)) {
        save_required_[v] = 1;
      }
    }
  }
  cache_.assign(P_, std::vector<char>(n, 0));
  cache_weight_.assign(P_, 0.0);
  blue_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (dag_.is_source(v)) blue_[v] = 1;
  }
  pos_.assign(P_, 0);
  last_active_.assign(P_, std::vector<std::int64_t>(n, -1));
}

std::int64_t Completer::effective_next_need(int p, NodeId v,
                                            std::int64_t from) const {
  const auto& uses = use_pos_[p][v];
  const auto uit = std::lower_bound(uses.begin(), uses.end(), from);
  if (uit == uses.end()) return kNever;
  const auto& comps = comp_pos_[p][v];
  const auto cit = std::lower_bound(comps.begin(), comps.end(), from);
  if (cit != comps.end() && *cit < *uit) return kNever;  // recomputed first
  return *uit;
}

std::optional<SegmentPlan> Completer::try_segment(int p,
                                                  std::int64_t count) const {
  const auto& seq = plan_.seq[p];
  const std::int64_t i0 = pos_[p];
  SegmentPlan seg;
  seg.count = count;
  seg.cache = cache_[p];
  seg.cache_weight = cache_weight_[p];

  // Collect upfront loads and the set of start-cache values the segment
  // consumes (those must not be evicted upfront).
  std::vector<char> produced(dag_.num_nodes(), 0);
  std::vector<char> needed_from_cache(dag_.num_nodes(), 0);
  std::vector<char> load_set(dag_.num_nodes(), 0);
  double load_weight = 0;
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[i0 + j].node;
    for (NodeId u : dag_.parents(v)) {
      if (produced[u] || load_set[u]) continue;
      if (seg.cache[u]) {
        needed_from_cache[u] = 1;
        continue;
      }
      if (!blue_[u]) return std::nullopt;  // not loadable yet
      load_set[u] = 1;
      seg.loads.push_back(u);
      load_weight += dag_.mu(u);
    }
    produced[v] = 1;
  }

  std::vector<char> blue_local = blue_;  // includes tentative pre-saves
  auto make_victims = [&](const std::vector<char>& cache,
                          const std::function<bool(NodeId)>& allowed,
                          std::int64_t from) {
    std::vector<VictimInfo> out;
    for (NodeId v = 0; v < dag_.num_nodes(); ++v) {
      if (!cache[v] || !allowed(v)) continue;
      VictimInfo info;
      info.node = v;
      const std::int64_t need = effective_next_need(p, v, from);
      info.next_use = need == kNever ? kNoNextUse : need;
      info.last_active = last_active_[p][v];
      out.push_back(info);
    }
    return out;
  };

  // Phase A: upfront evictions so start cache + loads fit.
  const double r_p = r_[static_cast<std::size_t>(p)];
  while (seg.cache_weight + load_weight > r_p + kMemEps) {
    const auto victims = make_victims(
        seg.cache, [&](NodeId v) { return !needed_from_cache[v]; }, i0);
    if (victims.empty()) return std::nullopt;
    const NodeId victim = policy_.choose_victim(victims);
    const bool live = effective_next_need(p, victim, i0) != kNever;
    if (!blue_local[victim] && (live || save_required(victim))) {
      seg.pre_saves.push_back(victim);
      blue_local[victim] = 1;
      seg.made_blue.push_back(victim);
    }
    seg.pre_deletes.push_back(victim);
    seg.cache[victim] = 0;
    seg.cache_weight -= dag_.mu(victim);
  }

  // Apply loads.
  for (NodeId u : seg.loads) {
    if (!seg.cache[u]) {
      seg.cache[u] = 1;
      seg.cache_weight += dag_.mu(u);
    }
    seg.touched[u] = i0;
  }

  // Phase B: replay the computes with mid-segment evictions. Mid-phase
  // evictions cannot SAVE (the save phase comes after the compute phase),
  // so a dirty value that is still live is only evictable by *hoisting*
  // its eviction before the segment (pre_saves / pre_deletes). Hoisting is
  // retroactively sound: every earlier capacity check passed with the
  // value present, so it also holds without it. Only untouched start-cache
  // values that the segment never consumes are hoistable.
  std::vector<char> hoistable(dag_.num_nodes(), 0);
  for (NodeId v = 0; v < dag_.num_nodes(); ++v) {
    hoistable[v] = seg.cache[v] && !needed_from_cache[v] && !load_set[v];
  }
  std::vector<int> remaining_need(dag_.num_nodes(), 0);
  for (std::int64_t j = 0; j < count; ++j) {
    for (NodeId u : dag_.parents(seq[i0 + j].node)) ++remaining_need[u];
  }
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[i0 + j].node;
    const std::int64_t gpos = i0 + j;
    if (!seg.cache[v]) {
      while (seg.cache_weight + dag_.mu(v) > r_p + kMemEps) {
        const auto victims = make_victims(
            seg.cache,
            [&](NodeId c) {
              if (remaining_need[c] > 0) return false;  // still a parent here
              if (blue_local[c]) return true;
              if (hoistable[c]) return true;
              // No blue pebble: only evictable if truly dead and never
              // needing a save (otherwise we would lose the value).
              return effective_next_need(p, c, gpos) == kNever &&
                     !save_required(c);
            },
            gpos + 1);
        if (victims.empty()) return std::nullopt;
        const NodeId victim = policy_.choose_victim(victims);
        const bool dirty_live =
            !blue_local[victim] &&
            (effective_next_need(p, victim, gpos) != kNever ||
             save_required(victim));
        if (dirty_live) {
          // Hoist: evict before the segment, saving first.
          seg.pre_saves.push_back(victim);
          blue_local[victim] = 1;
          seg.made_blue.push_back(victim);
          seg.pre_deletes.push_back(victim);
        } else {
          seg.ops.push_back(PhaseOp::erase(victim));
        }
        seg.cache[victim] = 0;
        seg.cache_weight -= dag_.mu(victim);
      }
      seg.ops.push_back(PhaseOp::compute(v));
      seg.cache[v] = 1;
      seg.cache_weight += dag_.mu(v);
    }
    // else: value already red; the occurrence is redundant, skip the op.
    seg.touched[v] = gpos;
    for (NodeId u : dag_.parents(v)) {
      --remaining_need[u];
      seg.touched[u] = gpos;
    }
    // Eager cleanup: drop parents that just died (free DELETE ops).
    for (NodeId u : dag_.parents(v)) {
      if (!seg.cache[u] || remaining_need[u] > 0) continue;
      if (effective_next_need(p, u, gpos + 1) != kNever) continue;
      if (!blue_local[u] && save_required(u)) continue;  // save pending
      seg.ops.push_back(PhaseOp::erase(u));
      seg.cache[u] = 0;
      seg.cache_weight -= dag_.mu(u);
    }
  }

  // Post phase: save outputs that need a blue pebble, then drop dead values.
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[i0 + j].node;
    if (seg.cache[v] && !blue_local[v] && save_required(v)) {
      seg.post_saves.push_back(v);
      blue_local[v] = 1;
      seg.made_blue.push_back(v);
    }
  }
  const std::int64_t after = i0 + count;
  for (NodeId v = 0; v < dag_.num_nodes(); ++v) {
    if (!seg.cache[v]) continue;
    if (effective_next_need(p, v, after) != kNever) continue;
    if (!blue_local[v] && save_required(v)) continue;
    seg.post_deletes.push_back(v);
    seg.cache[v] = 0;
    seg.cache_weight -= dag_.mu(v);
  }
  return seg;
}

SegmentPlan Completer::plan_largest_segment(int p, int superstep) const {
  const auto& seq = plan_.seq[p];
  std::int64_t limit = 0;
  while (pos_[p] + limit < static_cast<std::int64_t>(seq.size()) &&
         seq[pos_[p] + limit].superstep == superstep) {
    ++limit;
  }
  assert(limit > 0);
  std::optional<SegmentPlan> best;
  for (std::int64_t count = 1; count <= limit; ++count) {
    auto attempt = try_segment(p, count);
    if (!attempt) break;
    best = std::move(attempt);
  }
  assert(best && "first compute of a segment must always be schedulable");
  return *std::move(best);
}

void Completer::commit(int p, const SegmentPlan& seg) {
  cache_[p] = seg.cache;
  cache_weight_[p] = seg.cache_weight;
  pos_[p] += seg.count;
  for (const auto& [node, when] : seg.touched) last_active_[p][node] = when;
  for (NodeId v : seg.pre_saves) blue_[v] = 1;  // same-slot save phase
  for (NodeId v : seg.post_saves) pending_blue_.push_back(v);
}

MbspSchedule Completer::run() {
  MbspSchedule out;
  out.append(P_);  // slot 0 carries the very first loads
  std::size_t cur = 0;
  const int K = plan_.num_supersteps();
  for (int k = 0; k < K; ++k) {
    for (;;) {
      bool any_remaining = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[p];
        if (pos_[p] < static_cast<std::int64_t>(seq.size()) &&
            seq[pos_[p]].superstep == k) {
          any_remaining = true;
        }
      }
      if (!any_remaining) break;
      if (out.steps.size() < cur + 2) out.append(P_);
      bool progress = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[p];
        if (pos_[p] >= static_cast<std::int64_t>(seq.size()) ||
            seq[pos_[p]].superstep != k) {
          continue;
        }
        const SegmentPlan seg = plan_largest_segment(p, k);
        ProcStep& stage = out.steps[cur].proc[p];
        stage.saves.insert(stage.saves.end(), seg.pre_saves.begin(),
                           seg.pre_saves.end());
        stage.deletes.insert(stage.deletes.end(), seg.pre_deletes.begin(),
                             seg.pre_deletes.end());
        stage.loads.insert(stage.loads.end(), seg.loads.begin(),
                           seg.loads.end());
        ProcStep& body = out.steps[cur + 1].proc[p];
        body.compute_phase.insert(body.compute_phase.end(), seg.ops.begin(),
                                  seg.ops.end());
        body.saves.insert(body.saves.end(), seg.post_saves.begin(),
                          seg.post_saves.end());
        body.deletes.insert(body.deletes.end(), seg.post_deletes.begin(),
                            seg.post_deletes.end());
        commit(p, seg);
        progress = true;
      }
      assert(progress);
      (void)progress;
      // post_saves become visible for loads staged from the next round on
      // (their save phase is the slot the next round stages loads into).
      for (NodeId v : pending_blue_) blue_[v] = 1;
      pending_blue_.clear();
      ++cur;
    }
  }
  out.drop_empty_supersteps();
  return out;
}

}  // namespace

MbspSchedule complete_memory(const MbspInstance& inst, const ComputePlan& plan,
                             const EvictionPolicy& policy) {
  Completer completer(inst, plan, policy);
  return completer.run();
}

}  // namespace mbsp
