#include "src/twostage/memory_completion.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

namespace mbsp {

namespace {

constexpr double kMemEps = 1e-9;
constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

/// One planned maximal segment of computes on one processor, together with
/// the I/O that realizes it and the processor-state delta after it. The
/// segment carries only its *changes* (never an O(n) cache snapshot), so a
/// planning attempt costs O(segment), not O(graph) — the property that
/// keeps completion tractable on 10^6-node plans (docs/SCALE.md).
struct SegmentPlan {
  std::vector<NodeId> loads;
  std::vector<NodeId> pre_saves;    // dirty upfront evictions (prev slot)
  std::vector<NodeId> pre_deletes;  // upfront evictions (prev slot)
  std::vector<PhaseOp> ops;         // computes + interleaved deletes
  std::vector<NodeId> post_saves;   // outputs needing a blue pebble
  std::vector<NodeId> post_deletes; // dead values dropped after the segment
  std::int64_t count = 0;           // number of plan entries consumed
  // State delta after the segment.
  std::vector<std::pair<NodeId, char>> cache_changes;  // final vs committed
  double cache_weight = 0;
  std::vector<NodeId> made_blue;  // pre_saves + post_saves (commit order)
  std::vector<std::pair<NodeId, std::int64_t>> touched;  // last_active, deduped
};

/// Per-processor static index: node -> ascending positions in seq[p],
/// CSR-flattened (offset array + one flat position pool) instead of a
/// vector-of-vectors per (proc, node), which at 10^6 nodes costs hundreds
/// of MB in empty vector headers alone.
struct PlanIndex {
  std::vector<std::uint32_t> offset;  // n + 1
  std::vector<std::int64_t> pos;      // ascending per node

  bool empty(NodeId v) const { return offset[v + 1] == offset[v]; }
  const std::int64_t* begin(NodeId v) const { return pos.data() + offset[v]; }
  const std::int64_t* end(NodeId v) const {
    return pos.data() + offset[v + 1];
  }
};

class Completer {
 public:
  Completer(const MbspInstance& inst, const ComputePlan& plan,
            const EvictionPolicy& policy)
      : inst_(inst), dag_(inst.dag), plan_(plan), policy_(policy),
        P_(plan.num_procs) {
    r_.resize(static_cast<std::size_t>(P_));
    for (int p = 0; p < P_; ++p) {
      r_[static_cast<std::size_t>(p)] = inst.arch.memory(p);
    }
    precompute();
  }

  MbspSchedule run();

 private:
  void precompute();
  std::optional<SegmentPlan> try_segment(int p, std::int64_t count);
  SegmentPlan plan_largest_segment(int p, int superstep);
  void commit(int p, const SegmentPlan& seg);

  /// Position (in seq[p]) of the next *need* of the current copy of v at or
  /// after `from`: the next use as a parent, unless v is recomputed on p
  /// before that use (then the current copy is not needed). kNever if none.
  std::int64_t effective_next_need(int p, NodeId v, std::int64_t from) const;

  bool save_required(NodeId v) const { return save_required_[v] != 0; }

  // -- Epoch-stamped per-attempt overlays -----------------------------------
  // One epoch per try_segment attempt: a slot is live iff its stamp equals
  // the current epoch, so "clearing" every per-attempt array is a counter
  // increment. All reads fall back to the committed base state when the
  // stamp is stale. This is the same dense-overlay idiom as the LNS
  // evaluator's scratch state (docs/PERFORMANCE.md).
  bool in_seg_cache(int p, NodeId v) const {
    return cache_st_[v] == epoch_ ? cache_ov_[v] != 0 : cache_[p][v] != 0;
  }
  void set_seg_cache(NodeId v, char state) {
    if (cache_st_[v] != epoch_) {
      cache_st_[v] = epoch_;
      cache_touched_.push_back(v);
    }
    cache_ov_[v] = state;
  }
  bool seg_blue(NodeId v) const {
    return blue_[v] != 0 || blueadd_st_[v] == epoch_;
  }
  void seg_make_blue(NodeId v) { blueadd_st_[v] = epoch_; }
  int seg_need(NodeId v) const {
    return need_st_[v] == epoch_ ? need_ov_[v] : 0;
  }
  void seg_need_add(NodeId v, int delta) {
    if (need_st_[v] != epoch_) {
      need_st_[v] = epoch_;
      need_ov_[v] = 0;
    }
    need_ov_[v] += delta;
  }
  void seg_touch(NodeId v, std::int64_t when) {
    if (touch_st_[v] != epoch_) {
      touch_st_[v] = epoch_;
      touch_list_.push_back(v);
    }
    touch_ov_[v] = when;
  }

  const MbspInstance& inst_;
  const ComputeDag& dag_;
  const ComputePlan& plan_;
  const EvictionPolicy& policy_;
  const int P_;
  std::vector<double> r_;  ///< per-proc capacity (uniform: all fast_memory)

  // Static plan indexes.
  std::vector<PlanIndex> use_idx_;   // [p]: node -> use positions
  std::vector<PlanIndex> comp_idx_;  // [p]: node -> compute positions
  std::vector<char> save_required_;  // sink or used on a non-computing proc

  // Dynamic state.
  std::vector<std::vector<char>> cache_;
  std::vector<std::vector<NodeId>> cache_list_;  // sorted cache contents [p]
  std::vector<double> cache_weight_;
  std::vector<char> blue_;          // visible for loads staged this round
  std::vector<NodeId> pending_blue_;  // post_saves; visible next round
  std::vector<std::int64_t> pos_;
  std::vector<std::vector<std::int64_t>> last_active_;

  // Per-attempt overlays (see above) + reused scratch.
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> produced_st_, load_st_, needed_st_, hoist_st_;
  std::vector<std::uint32_t> blueadd_st_, cache_st_, need_st_, touch_st_;
  std::vector<char> cache_ov_;
  std::vector<int> need_ov_;
  std::vector<std::int64_t> touch_ov_;
  std::vector<NodeId> cache_touched_;  // nodes with a stamped cache slot
  std::vector<NodeId> touch_list_;
  std::vector<NodeId> candidates_;  // sorted superset of in-cache nodes
  std::vector<VictimInfo> victims_;
};

void Completer::precompute() {
  const NodeId n = dag_.num_nodes();
  // CSR-ify the (proc, node) -> positions maps: one counting pass, prefix
  // sums, one fill pass. Ascending fill order preserves ascending position
  // lists per node.
  use_idx_.resize(static_cast<std::size_t>(P_));
  comp_idx_.resize(static_cast<std::size_t>(P_));
  for (int p = 0; p < P_; ++p) {
    auto& uses = use_idx_[static_cast<std::size_t>(p)];
    auto& comps = comp_idx_[static_cast<std::size_t>(p)];
    uses.offset.assign(n + 1, 0);
    comps.offset.assign(n + 1, 0);
    const auto& seq = plan_.seq[p];
    for (const PlannedCompute& pc : seq) {
      ++comps.offset[pc.node + 1];
      for (NodeId u : dag_.parents(pc.node)) ++uses.offset[u + 1];
    }
    for (NodeId v = 0; v < n; ++v) {
      uses.offset[v + 1] += uses.offset[v];
      comps.offset[v + 1] += comps.offset[v];
    }
    uses.pos.resize(uses.offset[n]);
    comps.pos.resize(comps.offset[n]);
    std::vector<std::uint32_t> ucur(uses.offset.begin(),
                                    uses.offset.end() - 1);
    std::vector<std::uint32_t> ccur(comps.offset.begin(),
                                    comps.offset.end() - 1);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const NodeId v = seq[i].node;
      comps.pos[ccur[v]++] = static_cast<std::int64_t>(i);
      for (NodeId u : dag_.parents(v)) {
        uses.pos[ucur[u]++] = static_cast<std::int64_t>(i);
      }
    }
  }
  save_required_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (dag_.is_source(v)) continue;
    if (dag_.is_sink(v)) {
      save_required_[v] = 1;
      continue;
    }
    // Used on some processor that is not the only computing processor.
    int computing = -1, computing_count = 0;
    for (int p = 0; p < P_; ++p) {
      if (!comp_idx_[static_cast<std::size_t>(p)].empty(v)) {
        computing = p;
        ++computing_count;
      }
    }
    for (int p = 0; p < P_ && !save_required_[v]; ++p) {
      if (!use_idx_[static_cast<std::size_t>(p)].empty(v) &&
          (computing_count > 1 || p != computing)) {
        save_required_[v] = 1;
      }
    }
  }
  cache_.assign(P_, std::vector<char>(n, 0));
  cache_list_.assign(P_, {});
  cache_weight_.assign(P_, 0.0);
  blue_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (dag_.is_source(v)) blue_[v] = 1;
  }
  pos_.assign(P_, 0);
  last_active_.assign(P_, std::vector<std::int64_t>(n, -1));

  produced_st_.assign(n, 0);
  load_st_.assign(n, 0);
  needed_st_.assign(n, 0);
  hoist_st_.assign(n, 0);
  blueadd_st_.assign(n, 0);
  cache_st_.assign(n, 0);
  need_st_.assign(n, 0);
  touch_st_.assign(n, 0);
  cache_ov_.assign(n, 0);
  need_ov_.assign(n, 0);
  touch_ov_.assign(n, 0);
}

std::int64_t Completer::effective_next_need(int p, NodeId v,
                                            std::int64_t from) const {
  const auto& uses = use_idx_[static_cast<std::size_t>(p)];
  const std::int64_t* uit = std::lower_bound(uses.begin(v), uses.end(v), from);
  if (uit == uses.end(v)) return kNever;
  const auto& comps = comp_idx_[static_cast<std::size_t>(p)];
  const std::int64_t* cit =
      std::lower_bound(comps.begin(v), comps.end(v), from);
  if (cit != comps.end(v) && *cit < *uit) return kNever;  // recomputed first
  return *uit;
}

std::optional<SegmentPlan> Completer::try_segment(int p, std::int64_t count) {
  ++epoch_;
  cache_touched_.clear();
  touch_list_.clear();
  const auto& seq = plan_.seq[p];
  const std::int64_t i0 = pos_[p];
  SegmentPlan seg;
  seg.count = count;
  seg.cache_weight = cache_weight_[p];

  // Collect upfront loads and the set of start-cache values the segment
  // consumes (those must not be evicted upfront).
  double load_weight = 0;
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[i0 + j].node;
    for (NodeId u : dag_.parents(v)) {
      if (produced_st_[u] == epoch_ || load_st_[u] == epoch_) continue;
      if (cache_[p][u]) {
        needed_st_[u] = epoch_;
        continue;
      }
      if (!blue_[u]) return std::nullopt;  // not loadable yet
      load_st_[u] = epoch_;
      seg.loads.push_back(u);
      load_weight += dag_.mu(u);
    }
    produced_st_[v] = epoch_;
  }

  // Sorted superset of everything that can ever be red during this
  // segment: the committed cache contents plus the loads and computes.
  // Victim enumeration and the post-delete sweep walk this list (filtered
  // by the live cache overlay) in ascending node order — the same victims
  // in the same order as a full 0..n scan, at O(candidates) cost.
  candidates_.clear();
  candidates_.insert(candidates_.end(), cache_list_[p].begin(),
                     cache_list_[p].end());
  candidates_.insert(candidates_.end(), seg.loads.begin(), seg.loads.end());
  for (std::int64_t j = 0; j < count; ++j) {
    candidates_.push_back(seq[i0 + j].node);
  }
  std::sort(candidates_.begin(), candidates_.end());
  candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                    candidates_.end());

  auto make_victims = [&](const std::function<bool(NodeId)>& allowed,
                          std::int64_t from) -> const std::vector<VictimInfo>& {
    victims_.clear();
    for (NodeId v : candidates_) {
      if (!in_seg_cache(p, v) || !allowed(v)) continue;
      VictimInfo info;
      info.node = v;
      const std::int64_t need = effective_next_need(p, v, from);
      info.next_use = need == kNever ? kNoNextUse : need;
      info.last_active = last_active_[p][v];
      victims_.push_back(info);
    }
    return victims_;
  };

  // Phase A: upfront evictions so start cache + loads fit.
  const double r_p = r_[static_cast<std::size_t>(p)];
  while (seg.cache_weight + load_weight > r_p + kMemEps) {
    const auto& victims = make_victims(
        [&](NodeId v) { return needed_st_[v] != epoch_; }, i0);
    if (victims.empty()) return std::nullopt;
    const NodeId victim = policy_.choose_victim(victims);
    const bool live = effective_next_need(p, victim, i0) != kNever;
    if (!seg_blue(victim) && (live || save_required(victim))) {
      seg.pre_saves.push_back(victim);
      seg_make_blue(victim);
      seg.made_blue.push_back(victim);
    }
    seg.pre_deletes.push_back(victim);
    set_seg_cache(victim, 0);
    seg.cache_weight -= dag_.mu(victim);
  }

  // Apply loads.
  for (NodeId u : seg.loads) {
    if (!in_seg_cache(p, u)) {
      set_seg_cache(u, 1);
      seg.cache_weight += dag_.mu(u);
    }
    seg_touch(u, i0);
  }

  // Phase B: replay the computes with mid-segment evictions. Mid-phase
  // evictions cannot SAVE (the save phase comes after the compute phase),
  // so a dirty value that is still live is only evictable by *hoisting*
  // its eviction before the segment (pre_saves / pre_deletes). Hoisting is
  // retroactively sound: every earlier capacity check passed with the
  // value present, so it also holds without it. Only untouched start-cache
  // values that the segment never consumes are hoistable.
  for (NodeId v : candidates_) {
    if (in_seg_cache(p, v) && needed_st_[v] != epoch_ &&
        load_st_[v] != epoch_) {
      hoist_st_[v] = epoch_;
    }
  }
  for (std::int64_t j = 0; j < count; ++j) {
    for (NodeId u : dag_.parents(seq[i0 + j].node)) seg_need_add(u, 1);
  }
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[i0 + j].node;
    const std::int64_t gpos = i0 + j;
    if (!in_seg_cache(p, v)) {
      while (seg.cache_weight + dag_.mu(v) > r_p + kMemEps) {
        const auto& victims = make_victims(
            [&](NodeId c) {
              if (seg_need(c) > 0) return false;  // still a parent here
              if (seg_blue(c)) return true;
              if (hoist_st_[c] == epoch_) return true;
              // No blue pebble: only evictable if truly dead and never
              // needing a save (otherwise we would lose the value).
              return effective_next_need(p, c, gpos) == kNever &&
                     !save_required(c);
            },
            gpos + 1);
        if (victims.empty()) return std::nullopt;
        const NodeId victim = policy_.choose_victim(victims);
        const bool dirty_live =
            !seg_blue(victim) &&
            (effective_next_need(p, victim, gpos) != kNever ||
             save_required(victim));
        if (dirty_live) {
          // Hoist: evict before the segment, saving first.
          seg.pre_saves.push_back(victim);
          seg_make_blue(victim);
          seg.made_blue.push_back(victim);
          seg.pre_deletes.push_back(victim);
        } else {
          seg.ops.push_back(PhaseOp::erase(victim));
        }
        set_seg_cache(victim, 0);
        seg.cache_weight -= dag_.mu(victim);
      }
      seg.ops.push_back(PhaseOp::compute(v));
      set_seg_cache(v, 1);
      seg.cache_weight += dag_.mu(v);
    }
    // else: value already red; the occurrence is redundant, skip the op.
    seg_touch(v, gpos);
    for (NodeId u : dag_.parents(v)) {
      seg_need_add(u, -1);
      seg_touch(u, gpos);
    }
    // Eager cleanup: drop parents that just died (free DELETE ops).
    for (NodeId u : dag_.parents(v)) {
      if (!in_seg_cache(p, u) || seg_need(u) > 0) continue;
      if (effective_next_need(p, u, gpos + 1) != kNever) continue;
      if (!seg_blue(u) && save_required(u)) continue;  // save pending
      seg.ops.push_back(PhaseOp::erase(u));
      set_seg_cache(u, 0);
      seg.cache_weight -= dag_.mu(u);
    }
  }

  // Post phase: save outputs that need a blue pebble, then drop dead values.
  for (std::int64_t j = 0; j < count; ++j) {
    const NodeId v = seq[i0 + j].node;
    if (in_seg_cache(p, v) && !seg_blue(v) && save_required(v)) {
      seg.post_saves.push_back(v);
      seg_make_blue(v);
      seg.made_blue.push_back(v);
    }
  }
  const std::int64_t after = i0 + count;
  for (NodeId v : candidates_) {
    if (!in_seg_cache(p, v)) continue;
    if (effective_next_need(p, v, after) != kNever) continue;
    if (!seg_blue(v) && save_required(v)) continue;
    seg.post_deletes.push_back(v);
    set_seg_cache(v, 0);
    seg.cache_weight -= dag_.mu(v);
  }

  // Materialize the deltas the commit applies.
  for (NodeId v : cache_touched_) {
    if (cache_ov_[v] != cache_[p][v]) seg.cache_changes.push_back({v, cache_ov_[v]});
  }
  for (NodeId v : touch_list_) seg.touched.push_back({v, touch_ov_[v]});
  return seg;
}

SegmentPlan Completer::plan_largest_segment(int p, int superstep) {
  const auto& seq = plan_.seq[p];
  std::int64_t limit = 0;
  while (pos_[p] + limit < static_cast<std::int64_t>(seq.size()) &&
         seq[pos_[p] + limit].superstep == superstep) {
    ++limit;
  }
  assert(limit > 0);
  std::optional<SegmentPlan> best;
  for (std::int64_t count = 1; count <= limit; ++count) {
    auto attempt = try_segment(p, count);
    if (!attempt) break;
    best = std::move(attempt);
  }
  assert(best && "first compute of a segment must always be schedulable");
  return *std::move(best);
}

void Completer::commit(int p, const SegmentPlan& seg) {
  for (const auto& [node, state] : seg.cache_changes) {
    cache_[p][node] = state;
  }
  cache_weight_[p] = seg.cache_weight;
  pos_[p] += seg.count;
  for (const auto& [node, when] : seg.touched) last_active_[p][node] = when;
  for (NodeId v : seg.pre_saves) blue_[v] = 1;  // same-slot save phase
  for (NodeId v : seg.post_saves) pending_blue_.push_back(v);
  // Restore the sorted-cache-contents invariant: drop evicted nodes, fold
  // in the additions (which were absent before, so a merge of two sorted
  // runs keeps the list duplicate-free).
  auto& list = cache_list_[p];
  std::erase_if(list, [&](NodeId v) { return cache_[p][v] == 0; });
  const std::size_t old_size = list.size();
  for (const auto& [node, state] : seg.cache_changes) {
    if (state != 0) list.push_back(node);
  }
  std::sort(list.begin() + static_cast<std::ptrdiff_t>(old_size), list.end());
  std::inplace_merge(list.begin(),
                     list.begin() + static_cast<std::ptrdiff_t>(old_size),
                     list.end());
}

MbspSchedule Completer::run() {
  MbspSchedule out;
  out.append(P_);  // slot 0 carries the very first loads
  std::size_t cur = 0;
  const int K = plan_.num_supersteps();
  for (int k = 0; k < K; ++k) {
    for (;;) {
      bool any_remaining = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[p];
        if (pos_[p] < static_cast<std::int64_t>(seq.size()) &&
            seq[pos_[p]].superstep == k) {
          any_remaining = true;
        }
      }
      if (!any_remaining) break;
      if (out.steps.size() < cur + 2) out.append(P_);
      bool progress = false;
      for (int p = 0; p < P_; ++p) {
        const auto& seq = plan_.seq[p];
        if (pos_[p] >= static_cast<std::int64_t>(seq.size()) ||
            seq[pos_[p]].superstep != k) {
          continue;
        }
        const SegmentPlan seg = plan_largest_segment(p, k);
        ProcStep& stage = out.steps[cur].proc[p];
        stage.saves.insert(stage.saves.end(), seg.pre_saves.begin(),
                           seg.pre_saves.end());
        stage.deletes.insert(stage.deletes.end(), seg.pre_deletes.begin(),
                             seg.pre_deletes.end());
        stage.loads.insert(stage.loads.end(), seg.loads.begin(),
                           seg.loads.end());
        ProcStep& body = out.steps[cur + 1].proc[p];
        body.compute_phase.insert(body.compute_phase.end(), seg.ops.begin(),
                                  seg.ops.end());
        body.saves.insert(body.saves.end(), seg.post_saves.begin(),
                          seg.post_saves.end());
        body.deletes.insert(body.deletes.end(), seg.post_deletes.begin(),
                            seg.post_deletes.end());
        commit(p, seg);
        progress = true;
      }
      assert(progress);
      (void)progress;
      // post_saves become visible for loads staged from the next round on
      // (their save phase is the slot the next round stages loads into).
      for (NodeId v : pending_blue_) blue_[v] = 1;
      pending_blue_.clear();
      ++cur;
    }
  }
  out.drop_empty_supersteps();
  return out;
}

}  // namespace

MbspSchedule complete_memory(const MbspInstance& inst, const ComputePlan& plan,
                             const EvictionPolicy& policy) {
  Completer completer(inst, plan, policy);
  return completer.run();
}

}  // namespace mbsp
