#include "src/model/machine_registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace mbsp {

MachineRegistry& MachineRegistry::global() {
  static MachineRegistry* registry = [] {
    auto* r = new MachineRegistry();
    register_builtin_machines(*r);
    return r;
  }();
  return *registry;
}

void MachineRegistry::add(std::unique_ptr<MachineFamily> family) {
  const std::string name = family->name();
  for (auto& existing : families_) {
    if (existing->name() == name) {
      existing = std::move(family);
      return;
    }
  }
  families_.push_back(std::move(family));
}

bool MachineRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

const MachineFamily* MachineRegistry::find(const std::string& name) const {
  for (const auto& family : families_) {
    if (family->name() == name) return family.get();
  }
  return nullptr;
}

const MachineFamily& MachineRegistry::at(const std::string& name) const {
  const MachineFamily* family = find(name);
  if (family == nullptr) {
    throw std::out_of_range("no machine kind named '" + name + "'");
  }
  return *family;
}

std::vector<std::string> MachineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const auto& family : families_) out.push_back(family->name());
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::optional<Machine> MachineRegistry::make_machine(const std::string& spec,
                                                     double base_memory,
                                                     std::string* error) const {
  std::string parse_error;
  const auto parsed = SpecString::parse(spec, &parse_error, "machine kind");
  if (!parsed) {
    fail(error, parse_error);
    return std::nullopt;
  }
  const MachineFamily* family = find(parsed->head);
  if (family == nullptr) {
    fail(error, spec_unknown_name_error(parsed->head, "machine kind",
                                        names()));
    return std::nullopt;
  }
  const auto declared = family->params();
  for (const auto& [key, value] : parsed->params) {
    const bool known =
        std::any_of(declared.begin(), declared.end(),
                    [&key](const MachineParamInfo& p) { return p.key == key; });
    if (!known) {
      std::vector<std::string> keys;
      keys.reserve(declared.size());
      for (const MachineParamInfo& p : declared) keys.push_back(p.key);
      fail(error, spec_unknown_key_error(
                      key, "machine kind '" + parsed->head + "'",
                      std::move(keys)));
      return std::nullopt;
    }
  }
  try {
    Machine machine = family->build(*parsed, base_memory);
    // Canonical name: parameters sorted by key, entries that *textually*
    // match the kind's declared default dropped — equal canonical
    // spellings share one name and one batch-cell key (textual rule, as
    // for workload specs: `speeds=1.0` is not folded into default `1`).
    SpecString normalized = *parsed;
    std::erase_if(normalized.params,
                  [&](const std::pair<std::string, std::string>& kv) {
                    return std::any_of(declared.begin(), declared.end(),
                                       [&kv](const MachineParamInfo& p) {
                                         return p.key == kv.first &&
                                                p.default_value == kv.second;
                                       });
                  });
    machine.name = normalized.canonical();
    return machine;
  } catch (const std::exception& e) {
    fail(error, parsed->head + ": " + e.what());
    return std::nullopt;
  }
}

namespace {

// Parses a per-processor value list `entry ('+' entry)*` where entry is
// `<value>x<count>` or a bare `<value>` (a single bare entry replicates
// across all P processors). Counts must sum to P; values are validated
// against `lo` (and > 0 when strictly_positive).
std::vector<double> parse_counted_list(const std::string& key,
                                       const std::string& text, int P,
                                       double lo, bool strictly_positive) {
  const auto bad = [&](const std::string& what) {
    return std::invalid_argument("parameter '" + key + "': " + what);
  };
  std::vector<double> out;
  std::size_t start = 0;
  std::vector<std::pair<double, int>> entries;
  while (start <= text.size()) {
    std::size_t end = text.find('+', start);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(start, end - start);
    if (item.empty()) throw bad("empty entry in '" + text + "'");
    const std::size_t x = item.find('x');
    const std::string value_text = item.substr(0, x);
    char* parse_end = nullptr;
    const double value = std::strtod(value_text.c_str(), &parse_end);
    if (parse_end == value_text.c_str() || *parse_end != '\0') {
      throw bad("bad entry '" + item + "' (expected <value> or <value>x<count>)");
    }
    if (strictly_positive && value <= 0) {
      throw bad("value " + value_text + " must be > 0");
    }
    if (value < lo) {
      throw bad("value " + value_text + " is below the minimum " +
                std::to_string(lo));
    }
    int count = 1;
    if (x != std::string::npos) {
      const std::string count_text = item.substr(x + 1);
      char* count_end = nullptr;
      const long parsed = std::strtol(count_text.c_str(), &count_end, 10);
      if (count_end == count_text.c_str() || *count_end != '\0' ||
          parsed < 1) {
        throw bad("bad entry '" + item +
                  "' (expected <value> or <value>x<count>)");
      }
      count = parsed > P ? P + 1 : static_cast<int>(parsed);
    }
    entries.emplace_back(value, count);
    if (end == text.size()) break;
    start = end + 1;
  }
  if (entries.size() == 1 && text.find('x') == std::string::npos) {
    // A single bare value replicates across every processor.
    entries[0].second = P;
  }
  // Validate the coverage before materializing, so a typo'd count is a
  // clean error instead of a huge allocation (counts were clamped to
  // P + 1 above, keeping the total exact-or-over without overflow).
  long covered = 0;
  for (const auto& [value, count] : entries) covered += count;
  if (covered != P) {
    throw bad("'" + text + "' covers " +
              (covered > P ? "more than " + std::to_string(P)
                           : std::to_string(covered)) +
              " processors, expected " + std::to_string(P));
  }
  for (const auto& [value, count] : entries) {
    for (int i = 0; i < count; ++i) out.push_back(value);
  }
  return out;
}

// Shared memory sizing: fast_memory = rf * base (rf >= 1 keeps every
// processor schedulable whenever base >= min_memory_r0), memories[p] =
// mems factor * fast_memory (factors >= 1 for the same reason).
void apply_memory_and_speed(Machine& m, const SpecString& spec,
                            double base_memory) {
  const double rf = spec_get_double(spec.params, "rf", 3.0, 1.0);
  m.fast_memory = rf * base_memory;
  m.speeds = parse_counted_list(
      "speeds", spec_get_string(spec.params, "speeds", "1"),
      m.num_processors, 0.0, /*strictly_positive=*/true);
  const std::vector<double> factors = parse_counted_list(
      "mems", spec_get_string(spec.params, "mems", "1"), m.num_processors,
      1.0, /*strictly_positive=*/true);
  m.memories.resize(factors.size());
  for (std::size_t p = 0; p < factors.size(); ++p) {
    m.memories[p] = factors[p] * m.fast_memory;
  }
}

class SimpleMachineFamily final : public MachineFamily {
 public:
  using BuildFn = Machine (*)(const SpecString&, double);

  SimpleMachineFamily(std::string name, std::string description,
                      std::vector<MachineParamInfo> params, BuildFn fn)
      : name_(std::move(name)),
        description_(std::move(description)),
        params_(std::move(params)),
        fn_(fn) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  std::vector<MachineParamInfo> params() const override { return params_; }
  Machine build(const SpecString& spec, double base_memory) const override {
    return fn_(spec, base_memory);
  }

 private:
  std::string name_;
  std::string description_;
  std::vector<MachineParamInfo> params_;
  BuildFn fn_;
};

Machine build_uniform(const SpecString& spec, double base_memory) {
  const int P = spec_get_int(spec.params, "P", 4);
  const double g = spec_get_double(spec.params, "g", 1.0);
  const double L = spec_get_double(spec.params, "L", 10.0);
  const double rf = spec_get_double(spec.params, "rf", 3.0, 1.0);
  return Machine::make(P, rf * base_memory, g, L);
}

Machine build_hetero(const SpecString& spec, double base_memory) {
  Machine m;
  m.num_processors = spec_get_int(spec.params, "P", 4);
  m.g = spec_get_double(spec.params, "g", 1.0);
  m.L = spec_get_double(spec.params, "L", 10.0);
  apply_memory_and_speed(m, spec, base_memory);
  return m;
}

Machine build_numa(const SpecString& spec, double base_memory) {
  const std::string groups_text =
      spec_get_string(spec.params, "groups", "2x2");
  const std::size_t x = groups_text.find('x');
  int num_groups = 0, group_size = 0;
  if (x != std::string::npos) {
    char* end1 = nullptr;
    char* end2 = nullptr;
    const std::string a = groups_text.substr(0, x);
    const std::string b = groups_text.substr(x + 1);
    num_groups = static_cast<int>(std::strtol(a.c_str(), &end1, 10));
    group_size = static_cast<int>(std::strtol(b.c_str(), &end2, 10));
    if (end1 == a.c_str() || *end1 != '\0' || end2 == b.c_str() ||
        *end2 != '\0') {
      num_groups = 0;
    }
  }
  if (num_groups < 1 || group_size < 1) {
    throw std::invalid_argument("parameter 'groups': bad value '" +
                                groups_text +
                                "' (expected <groups>x<procs-per-group>)");
  }
  Machine m;
  m.num_processors = num_groups * group_size;
  m.g_in = spec_get_double(spec.params, "gin", 1.0);
  m.g_out = spec_get_double(spec.params, "gout", 4.0);
  m.g = m.g_in;  // what group-oblivious stage-1 heuristics see
  m.L = spec_get_double(spec.params, "L", 10.0);
  m.L_group = spec_get_double(spec.params, "Lg", 0.0);
  m.group_of.resize(static_cast<std::size_t>(m.num_processors));
  for (int p = 0; p < m.num_processors; ++p) {
    m.group_of[static_cast<std::size_t>(p)] = p / group_size;
  }
  apply_memory_and_speed(m, spec, base_memory);
  return m;
}

}  // namespace

void register_builtin_machines(MachineRegistry& r) {
  using P = MachineParamInfo;
  r.add(std::make_unique<SimpleMachineFamily>(
      "uniform", "the paper's flat machine: P identical processors",
      std::vector<P>{{"P", "4", "processor count"},
                     {"rf", "3", "fast memory as a factor of min_memory_r0"},
                     {"g", "1", "cost per transferred data unit"},
                     {"L", "10", "per-superstep synchronization cost"}},
      &build_uniform));
  r.add(std::make_unique<SimpleMachineFamily>(
      "hetero",
      "per-processor compute speeds and fast-memory capacities",
      std::vector<P>{
          {"P", "4", "processor count"},
          {"speeds", "1", "per-proc speeds, e.g. 1x4+2x4 (sums to P)"},
          {"mems", "1", "per-proc memory factors >= 1, e.g. 1x6+2x2"},
          {"rf", "3", "base fast memory as a factor of min_memory_r0"},
          {"g", "1", "cost per transferred data unit"},
          {"L", "10", "per-superstep synchronization cost"}},
      &build_hetero));
  r.add(std::make_unique<SimpleMachineFamily>(
      "numa",
      "two-level communication hierarchy: processor groups with "
      "intra/cross-group transfer costs",
      std::vector<P>{
          {"groups", "2x2", "topology <groups>x<procs-per-group>"},
          {"gin", "1", "intra-group transfer cost"},
          {"gout", "4", "cross-group / far-memory transfer cost"},
          {"L", "10", "global per-superstep synchronization cost"},
          {"Lg", "0", "extra latency contributed per group per superstep"},
          {"speeds", "1", "per-proc speeds, e.g. 1x4+2x4 (sums to P)"},
          {"mems", "1", "per-proc memory factors >= 1"},
          {"rf", "3", "base fast memory as a factor of min_memory_r0"}},
      &build_numa));
}

}  // namespace mbsp
