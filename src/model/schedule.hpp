#pragma once
// MBSP schedule representation (Section 3.2). A schedule is a sequence of
// supersteps; per superstep, each processor runs four phases in order:
//
//   compute phase  — COMPUTE and DELETE operations,
//   save phase     — SAVE operations (red -> blue),
//   delete phase   — DELETE operations,
//   load phase     — LOAD operations (blue -> red).
//
// The shared blue set B is updated with the union of all processors' saves
// at the end of the save phase, so a value saved by any processor in
// superstep i is already loadable in superstep i's load phase.

#include <string>
#include <vector>

#include "src/model/instance.hpp"

namespace mbsp {

enum class OpKind { kCompute, kDelete };

/// One operation of a compute phase.
struct PhaseOp {
  OpKind kind;
  NodeId node;

  static PhaseOp compute(NodeId v) { return {OpKind::kCompute, v}; }
  static PhaseOp erase(NodeId v) { return {OpKind::kDelete, v}; }

  bool operator==(const PhaseOp&) const = default;
};

/// One processor's share of a superstep.
struct ProcStep {
  std::vector<PhaseOp> compute_phase;
  std::vector<NodeId> saves;
  std::vector<NodeId> deletes;  ///< delete phase (after saves)
  std::vector<NodeId> loads;

  bool empty() const {
    return compute_phase.empty() && saves.empty() && deletes.empty() &&
           loads.empty();
  }

  /// Sum of omega over COMPUTE ops of this phase.
  double compute_cost(const ComputeDag& dag) const;
  /// Sum of g * mu over saves / loads.
  double save_cost(const ComputeDag& dag, double g) const;
  double load_cost(const ComputeDag& dag, double g) const;
};

struct Superstep {
  std::vector<ProcStep> proc;  ///< size == P

  explicit Superstep(int num_procs = 0) : proc(num_procs) {}

  bool empty() const;
};

/// A full MBSP schedule. Validity is checked by `validate()` (validate.hpp);
/// costs by `sync_cost()` / `async_cost()` (cost.hpp).
struct MbspSchedule {
  std::vector<Superstep> steps;

  int num_supersteps() const { return static_cast<int>(steps.size()); }

  /// Appends an empty superstep for `num_procs` processors, returns it.
  Superstep& append(int num_procs);

  /// Removes supersteps in which no processor does anything.
  void drop_empty_supersteps();

  /// Total number of operations (all kinds, all processors).
  std::size_t num_ops() const;

  /// Number of COMPUTE operations of node v (recomputation multiplicity).
  std::size_t compute_count(NodeId v) const;

  /// Human-readable dump for debugging / examples.
  std::string to_string(const MbspInstance& inst) const;
};

}  // namespace mbsp
