#include "src/model/report.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/util/table.hpp"

namespace mbsp {

ScheduleStats schedule_stats(const MbspInstance& inst,
                             const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  ScheduleStats stats;
  stats.supersteps = sched.num_supersteps();
  const SyncCostBreakdown breakdown = sync_cost_breakdown(inst, sched);
  stats.compute_cost = breakdown.compute;
  stats.io_cost = breakdown.io;
  stats.sync_cost_total = breakdown.total();
  stats.async_cost_total = async_cost(inst, sched);
  stats.io_volume = io_volume(inst, sched);

  std::vector<int> computed(dag.num_nodes(), 0);
  double imbalance_sum = 0;
  int imbalance_steps = 0;
  for (const Superstep& step : sched.steps) {
    double max_comp = 0, sum_comp = 0;
    int procs_with_work = 0;
    for (const ProcStep& ps : step.proc) {
      stats.loads += ps.loads.size();
      stats.saves += ps.saves.size();
      stats.deletes += ps.deletes.size();
      double comp = 0;
      for (const PhaseOp& op : ps.compute_phase) {
        if (op.kind == OpKind::kCompute) {
          ++stats.computes;
          ++computed[op.node];
          comp += dag.omega(op.node);
        } else {
          ++stats.deletes;
        }
      }
      max_comp = std::max(max_comp, comp);
      sum_comp += comp;
      procs_with_work += comp > 0;
    }
    if (procs_with_work > 0 && sum_comp > 0) {
      const double mean = sum_comp / static_cast<double>(step.proc.size());
      imbalance_sum += max_comp / mean;
      ++imbalance_steps;
    }
  }
  for (int count : computed) stats.recomputed_nodes += count > 1;
  if (imbalance_steps > 0) {
    stats.compute_imbalance =
        imbalance_sum / static_cast<double>(imbalance_steps);
  }
  return stats;
}

std::string schedule_report(const MbspInstance& inst,
                            const MbspSchedule& sched) {
  const ScheduleStats stats = schedule_stats(inst, sched);
  std::ostringstream out;
  out << "schedule for '" << inst.name() << "': " << stats.supersteps
      << " supersteps, sync cost " << stats.sync_cost_total << " (compute "
      << stats.compute_cost << ", I/O " << stats.io_cost << ", sync "
      << stats.sync_cost_total - stats.compute_cost - stats.io_cost
      << "), async cost " << stats.async_cost_total << "\n"
      << "ops: " << stats.computes << " computes, " << stats.loads
      << " loads, " << stats.saves << " saves, " << stats.deletes
      << " deletes; I/O volume " << stats.io_volume << "; "
      << stats.recomputed_nodes << " nodes recomputed; compute imbalance "
      << stats.compute_imbalance << "\n";

  // Per-step maxima come from the cost table, so the report prices
  // heterogeneous machines (speeds, comm groups) exactly like the cost.
  const std::vector<SyncStepCost> rows = sync_cost_table(inst, sched);
  Table table({"superstep", "max comp", "max save", "max load", "ops"});
  for (std::size_t s = 0; s < sched.steps.size(); ++s) {
    std::size_t ops = 0;
    for (const ProcStep& ps : sched.steps[s].proc) {
      ops += ps.compute_phase.size() + ps.saves.size() + ps.deletes.size() +
             ps.loads.size();
    }
    table.add_row({std::to_string(s), fmt(rows[s].max_compute, 1),
                   fmt(rows[s].max_save, 1), fmt(rows[s].max_load, 1),
                   std::to_string(ops)});
  }
  out << table.to_text();
  return out.str();
}

}  // namespace mbsp
