#pragma once
// Computing architecture of the MBSP model (Section 3): P processors, each
// with a private fast memory of capacity r, plus the BSP parameters g
// (cost per transferred data unit) and L (synchronization cost).

namespace mbsp {

struct Architecture {
  int num_processors = 1;  ///< P >= 1
  double fast_memory = 0;  ///< r, per-processor cache capacity
  double g = 1;            ///< cost of moving one unit of data
  double L = 0;            ///< per-superstep synchronization cost

  static Architecture make(int P, double r, double g = 1, double L = 0) {
    return Architecture{P, r, g, L};
  }
};

}  // namespace mbsp
