#pragma once
// Machine model of the MBSP architecture (Section 3), generalized beyond
// the paper's uniform tuple. The paper's machine is P identical processors,
// each with a private fast memory of capacity r, plus the BSP parameters g
// (cost per transferred data unit) and L (per-superstep synchronization).
//
// `Machine` keeps that uniform machine as the exact special case (empty
// heterogeneity vectors; `Machine::make` builds it) and adds three
// orthogonal axes, each opt-in:
//
//  * per-processor compute speeds — a superstep's compute phase costs
//    work(p) / speed(p) on processor p instead of raw work;
//  * per-processor fast-memory capacities — `memory(p)` bounds the red
//    set of processor p in validation and memory completion;
//  * a two-level communication hierarchy — processors are partitioned
//    into groups; every saved value is "homed" in the group segment of
//    its first saver, and a transfer costs `g_in` when the operating
//    processor's group matches the value's home group, `g_out` when it
//    does not (DAG sources live in far memory: loads cost `g_out`).
//    Each group additionally contributes `L_group` to every superstep's
//    synchronization latency (on top of the global `L`).
//
// On a uniform machine every accessor degenerates to the flat tuple
// (speed 1, memory r, a single group with g_in == g_out == g), and the
// generalized cost paths are bitwise identical to the historical ones —
// asserted by tests/test_machine.cpp. Machines are built by hand via
// `make`, or from a spec string ("numa:groups=2x4,gin=1,gout=4") via
// MachineRegistry (machine_registry.hpp); docs/MACHINES.md specifies the
// grammar and the exact cost semantics.

#include <string>
#include <vector>

namespace mbsp {

struct Machine {
  int num_processors = 1;  ///< P >= 1
  double fast_memory = 0;  ///< r, per-processor cache capacity (base)
  double g = 1;            ///< cost of moving one unit of data (uniform)
  double L = 0;            ///< per-superstep synchronization cost (global)

  /// Per-processor relative compute speeds (size P, all > 0), or empty
  /// for the uniform machine (every processor at speed 1).
  std::vector<double> speeds;
  /// Per-processor fast-memory capacities (size P), or empty for the
  /// uniform machine (every processor at `fast_memory`).
  std::vector<double> memories;
  /// Per-processor communication-group ids (size P, dense from 0), or
  /// empty for the uniform machine (a single group).
  std::vector<int> group_of;
  double g_in = 1;    ///< intra-group transfer cost (groups only)
  double g_out = 1;   ///< cross-group / far-memory transfer cost
  double L_group = 0; ///< extra latency contributed per group per superstep

  /// Canonical machine-spec name ("" for ad-hoc uniform machines); set by
  /// MachineRegistry so batch cells and tables can key results by machine.
  std::string name;

  /// The paper's uniform machine — the historical Architecture::make.
  static Machine make(int P, double r, double g = 1, double L = 0) {
    Machine m;
    m.num_processors = P;
    m.fast_memory = r;
    m.g = g;
    m.L = L;
    return m;
  }

  /// True when no heterogeneity axis is active: the flat (P, r, g, L)
  /// machine whose cost paths the uniform code reproduces verbatim.
  bool is_uniform() const {
    return speeds.empty() && memories.empty() && group_of.empty();
  }

  /// Relative compute speed of processor p (1 on uniform machines).
  double speed(int p) const {
    return speeds.empty() ? 1.0 : speeds[static_cast<std::size_t>(p)];
  }

  /// Fast-memory capacity of processor p (`fast_memory` on uniform).
  double memory(int p) const {
    return memories.empty() ? fast_memory
                            : memories[static_cast<std::size_t>(p)];
  }

  /// Communication group of processor p (0 on uniform machines).
  int group(int p) const {
    return group_of.empty() ? 0 : group_of[static_cast<std::size_t>(p)];
  }

  /// Number of communication groups (1 on uniform machines). group_of is
  /// dense from 0, so this is max + 1.
  int num_groups() const {
    int groups = 1;
    for (int grp : group_of) groups = groups > grp + 1 ? groups : grp + 1;
    return groups;
  }

  /// Per-transfer-unit cost for processor p touching a value homed in
  /// group `home` (-1 = far memory / never saved). Single-group machines
  /// always pay `g` — the uniform path bitwise.
  double comm_g(int p, int home) const {
    if (group_of.empty()) return g;
    return home == group(p) ? g_in : g_out;
  }

  /// Effective per-superstep synchronization latency: the global barrier
  /// plus every group's contribution. Uniform machines: exactly L.
  double sync_L() const {
    return group_of.empty() ? L : L + L_group * num_groups();
  }
};

/// Historical name: every pre-heterogeneity call site constructed an
/// Architecture; the alias keeps that spelling valid.
using Architecture = Machine;

}  // namespace mbsp
