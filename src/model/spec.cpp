#include "src/model/spec.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <stdexcept>

namespace mbsp {

namespace {

void fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

std::optional<SpecString> SpecString::parse(const std::string& text,
                                            std::string* error,
                                            const std::string& what) {
  SpecString spec;
  const std::size_t colon = text.find(':');
  spec.head = text.substr(0, colon);
  if (spec.head.empty()) {
    fail(error, "empty " + what + " in spec '" + text + "'");
    return std::nullopt;
  }
  if (colon == std::string::npos) return spec;
  std::size_t start = colon + 1;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    const std::string item = text.substr(start, end - start);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(error, "bad parameter '" + item + "' (expected key=value)");
        return std::nullopt;
      }
      const std::string key = item.substr(0, eq);
      if (spec.find(key) != nullptr) {
        fail(error, "duplicate parameter '" + key + "'");
        return std::nullopt;
      }
      spec.params.emplace_back(key, item.substr(eq + 1));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return spec;
}

namespace {

const std::string* find_param(const SpecParamList& params,
                              const std::string& key) {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    out += (i == 0 ? "" : ", ") + names[i];
  }
  return out;
}

}  // namespace

const std::string* SpecString::find(const std::string& key) const {
  return find_param(params, key);
}

std::string SpecString::canonical() const {
  if (params.empty()) return head;
  auto sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string out = head + ":";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first + "=" + sorted[i].second;
  }
  return out;
}

int spec_get_int(const SpecParamList& params, const std::string& key, int def,
                 int lo) {
  const std::string* value = find_param(params, key);
  if (value == nullptr) return def;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    throw std::invalid_argument("parameter '" + key + "': '" + *value +
                                "' is not an integer");
  }
  if (errno == ERANGE || parsed > INT_MAX) {
    throw std::invalid_argument("parameter '" + key + "': " + *value +
                                " is out of range");
  }
  if (parsed < lo) {
    throw std::invalid_argument("parameter '" + key + "': " + *value +
                                " is below the minimum " + std::to_string(lo));
  }
  return static_cast<int>(parsed);
}

double spec_get_double(const SpecParamList& params, const std::string& key,
                       double def, double lo) {
  const std::string* value = find_param(params, key);
  if (value == nullptr) return def;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    throw std::invalid_argument("parameter '" + key + "': '" + *value +
                                "' is not a number");
  }
  if (parsed < lo) {
    throw std::invalid_argument("parameter '" + key + "': " + *value +
                                " is below the minimum " + std::to_string(lo));
  }
  return parsed;
}

std::string spec_get_string(const SpecParamList& params,
                            const std::string& key, std::string def) {
  const std::string* value = find_param(params, key);
  return value == nullptr ? std::move(def) : *value;
}

std::string spec_unknown_key_error(const std::string& key,
                                   const std::string& holder,
                                   std::vector<std::string> valid_keys) {
  std::sort(valid_keys.begin(), valid_keys.end());
  return "unknown parameter '" + key + "' for " + holder + " (valid: " +
         joined(valid_keys) + ")";
}

std::string spec_unknown_name_error(const std::string& name,
                                    const std::string& what,
                                    const std::vector<std::string>& known) {
  return "unknown " + what + " '" + name + "' (known: " + joined(known) + ")";
}

}  // namespace mbsp
