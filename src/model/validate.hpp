#pragma once
// Full semantic validation of an MBSP schedule against the transition rules
// of Section 3.1 / Appendix A:
//   LOAD    requires a blue pebble; SAVE requires this processor's red;
//   COMPUTE requires all parents red on this processor and v not a source;
//   the per-processor memory bound holds after every operation;
//   the initial configuration has blue exactly on the sources, no reds;
//   the terminal configuration has blue on every sink.

#include <string>

#include "src/model/instance.hpp"
#include "src/model/schedule.hpp"

namespace mbsp {

struct ValidationResult {
  bool ok = true;
  std::string error;  ///< first violation, empty when ok

  explicit operator bool() const { return ok; }
};

ValidationResult validate(const MbspInstance& inst, const MbspSchedule& sched);

/// Convenience: validate and abort with the message on failure (tests).
void validate_or_die(const MbspInstance& inst, const MbspSchedule& sched);

}  // namespace mbsp
