#include "src/model/schedule.hpp"

#include <sstream>

namespace mbsp {

double ProcStep::compute_cost(const ComputeDag& dag) const {
  double sum = 0;
  for (const PhaseOp& op : compute_phase) {
    if (op.kind == OpKind::kCompute) sum += dag.omega(op.node);
  }
  return sum;
}

double ProcStep::save_cost(const ComputeDag& dag, double g) const {
  double sum = 0;
  for (NodeId v : saves) sum += g * dag.mu(v);
  return sum;
}

double ProcStep::load_cost(const ComputeDag& dag, double g) const {
  double sum = 0;
  for (NodeId v : loads) sum += g * dag.mu(v);
  return sum;
}

bool Superstep::empty() const {
  for (const ProcStep& ps : proc) {
    if (!ps.empty()) return false;
  }
  return true;
}

Superstep& MbspSchedule::append(int num_procs) {
  steps.emplace_back(num_procs);
  return steps.back();
}

void MbspSchedule::drop_empty_supersteps() {
  std::erase_if(steps, [](const Superstep& s) { return s.empty(); });
}

std::size_t MbspSchedule::num_ops() const {
  std::size_t count = 0;
  for (const Superstep& step : steps) {
    for (const ProcStep& ps : step.proc) {
      count += ps.compute_phase.size() + ps.saves.size() + ps.deletes.size() +
               ps.loads.size();
    }
  }
  return count;
}

std::size_t MbspSchedule::compute_count(NodeId v) const {
  std::size_t count = 0;
  for (const Superstep& step : steps) {
    for (const ProcStep& ps : step.proc) {
      for (const PhaseOp& op : ps.compute_phase) {
        if (op.kind == OpKind::kCompute && op.node == v) ++count;
      }
    }
  }
  return count;
}

std::string MbspSchedule::to_string(const MbspInstance& inst) const {
  std::ostringstream out;
  out << "MBSP schedule for '" << inst.name() << "' (" << steps.size()
      << " supersteps, P=" << inst.arch.num_processors << ")\n";
  for (std::size_t s = 0; s < steps.size(); ++s) {
    out << "superstep " << s << ":\n";
    for (std::size_t p = 0; p < steps[s].proc.size(); ++p) {
      const ProcStep& ps = steps[s].proc[p];
      if (ps.empty()) continue;
      out << "  p" << p << ": ";
      for (const PhaseOp& op : ps.compute_phase) {
        out << (op.kind == OpKind::kCompute ? "C" : "D") << op.node << ' ';
      }
      if (!ps.saves.empty()) {
        out << "| save:";
        for (NodeId v : ps.saves) out << ' ' << v;
        out << ' ';
      }
      if (!ps.deletes.empty()) {
        out << "| del:";
        for (NodeId v : ps.deletes) out << ' ' << v;
        out << ' ';
      }
      if (!ps.loads.empty()) {
        out << "| load:";
        for (NodeId v : ps.loads) out << ' ' << v;
      }
      out << '\n';
    }
  }
  return out.str();
}

}  // namespace mbsp
