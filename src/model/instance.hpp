#pragma once
// An MBSP problem instance: the computational DAG plus the architecture.

#include <string>

#include "src/graph/dag.hpp"
#include "src/model/arch.hpp"

namespace mbsp {

struct MbspInstance {
  ComputeDag dag;
  Architecture arch;

  const std::string& name() const { return dag.name(); }
};

/// Minimal fast-memory capacity r0 that admits a valid schedule:
/// max over non-source v of mu(v) + sum of parents' mu, and at least the
/// largest single mu (sources must be loadable).
double min_memory_r0(const ComputeDag& dag);

}  // namespace mbsp
