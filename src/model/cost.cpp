#include "src/model/cost.hpp"

#include <algorithm>
#include <limits>

namespace mbsp {

std::vector<SyncStepCost> sync_cost_table(const MbspInstance& inst,
                                          const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  std::vector<SyncStepCost> table;
  table.reserve(sched.steps.size());
  for (const Superstep& step : sched.steps) {
    SyncStepCost row;
    for (const ProcStep& ps : step.proc) {
      row.max_compute = std::max(row.max_compute, ps.compute_cost(dag));
      row.max_save = std::max(row.max_save, ps.save_cost(dag, inst.arch.g));
      row.max_load = std::max(row.max_load, ps.load_cost(dag, inst.arch.g));
    }
    table.push_back(row);
  }
  return table;
}

SyncCostBreakdown sum_sync_cost_table(const std::vector<SyncStepCost>& table,
                                      double L) {
  SyncCostBreakdown out;
  for (const SyncStepCost& row : table) {
    out.compute += row.max_compute;
    out.io += row.max_save + row.max_load;
    out.sync += L;
  }
  return out;
}

SyncCostBreakdown sync_cost_breakdown(const MbspInstance& inst,
                                      const MbspSchedule& sched) {
  return sum_sync_cost_table(sync_cost_table(inst, sched), inst.arch.L);
}

double sync_cost(const MbspInstance& inst, const MbspSchedule& sched) {
  return sync_cost_breakdown(inst, sched).total();
}

double async_cost(const MbspInstance& inst, const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  const int P = inst.arch.num_processors;
  const double g = inst.arch.g;
  constexpr double kUnset = std::numeric_limits<double>::infinity();

  std::vector<double> gets_blue(dag.num_nodes(), kUnset);
  std::vector<int> first_save_step(dag.num_nodes(), -1);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.is_source(v)) gets_blue[v] = 0;  // sources start in slow memory
  }

  std::vector<double> now(P, 0.0);  // finishing time of last op per proc

  for (std::size_t s = 0; s < sched.steps.size(); ++s) {
    const Superstep& step = sched.steps[s];
    // Compute phases (delete ops cost 0, computes cost omega).
    for (int p = 0; p < P; ++p) {
      for (const PhaseOp& op : step.proc[p].compute_phase) {
        if (op.kind == OpKind::kCompute) now[p] += dag.omega(op.node);
      }
    }
    // Save phases: record Gamma candidates for the *first* saving superstep.
    for (int p = 0; p < P; ++p) {
      for (NodeId v : step.proc[p].saves) {
        now[p] += g * dag.mu(v);
        if (first_save_step[v] == -1) first_save_step[v] = static_cast<int>(s);
        if (first_save_step[v] == static_cast<int>(s)) {
          gets_blue[v] = std::min(gets_blue[v], now[p]);
        }
      }
    }
    // Delete phases are free. Load phases wait for availability.
    for (int p = 0; p < P; ++p) {
      for (NodeId v : step.proc[p].loads) {
        now[p] = std::max(now[p], gets_blue[v]) + g * dag.mu(v);
      }
    }
  }
  double makespan = 0;
  for (int p = 0; p < P; ++p) makespan = std::max(makespan, now[p]);
  return makespan;
}

double io_volume(const MbspInstance& inst, const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  double volume = 0;
  for (const Superstep& step : sched.steps) {
    for (const ProcStep& ps : step.proc) {
      for (NodeId v : ps.saves) volume += dag.mu(v);
      for (NodeId v : ps.loads) volume += dag.mu(v);
    }
  }
  return volume;
}

}  // namespace mbsp
