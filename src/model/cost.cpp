#include "src/model/cost.hpp"

#include <algorithm>
#include <limits>

namespace mbsp {

std::vector<int> home_groups(const MbspInstance& inst,
                             const MbspSchedule& sched) {
  std::vector<int> home(static_cast<std::size_t>(inst.dag.num_nodes()), -1);
  const Machine& m = inst.arch;
  for (const Superstep& step : sched.steps) {
    for (std::size_t p = 0; p < step.proc.size(); ++p) {
      for (NodeId v : step.proc[p].saves) {
        if (home[static_cast<std::size_t>(v)] < 0) {
          home[static_cast<std::size_t>(v)] = m.group(static_cast<int>(p));
        }
      }
    }
  }
  return home;
}

namespace {

/// Folds per-processor field values (SoA scratch rows) into a SyncStepCost.
/// One contiguous sweep per field: max over non-NaN doubles is order-free,
/// so splitting the fold is bitwise identical to the historical interleaved
/// loop while giving the compiler straight-line vectorizable reductions.
SyncStepCost fold_step_row(const double* comp, const double* save,
                           const double* load, std::size_t np) {
  SyncStepCost row;
  for (std::size_t p = 0; p < np; ++p) {
    row.max_compute = std::max(row.max_compute, comp[p]);
  }
  for (std::size_t p = 0; p < np; ++p) {
    row.max_save = std::max(row.max_save, save[p]);
  }
  for (std::size_t p = 0; p < np; ++p) {
    row.max_load = std::max(row.max_load, load[p]);
  }
  return row;
}

}  // namespace

std::vector<SyncStepCost> sync_cost_table(const MbspInstance& inst,
                                          const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  std::vector<SyncStepCost> table;
  table.reserve(sched.steps.size());
  std::size_t max_p = 0;
  for (const Superstep& step : sched.steps) {
    max_p = std::max(max_p, step.proc.size());
  }
  // Gather-then-fold: per-proc field values land in structure-of-arrays
  // scratch rows, then each field folds in its own sweep (fold_step_row).
  std::vector<double> comp(max_p), save(max_p), load(max_p);
  if (inst.arch.is_uniform()) {
    // The paper's machine — per-proc costs priced exactly as before.
    for (const Superstep& step : sched.steps) {
      const std::size_t np = step.proc.size();
      for (std::size_t p = 0; p < np; ++p) {
        const ProcStep& ps = step.proc[p];
        comp[p] = ps.compute_cost(dag);
        save[p] = ps.save_cost(dag, inst.arch.g);
        load[p] = ps.load_cost(dag, inst.arch.g);
      }
      table.push_back(fold_step_row(comp.data(), save.data(), load.data(), np));
    }
    return table;
  }
  // Heterogeneous machine: per-processor speed scaling, per-operation
  // group-aware transfer costs against the home assignment. The home of a
  // value is fixed by its first save, which always precedes every load of
  // it (validity), so a single upfront pass prices every transfer exactly
  // as an in-order scan would.
  const Machine& m = inst.arch;
  const std::vector<int> home = home_groups(inst, sched);
  for (const Superstep& step : sched.steps) {
    const std::size_t np = step.proc.size();
    for (std::size_t p = 0; p < np; ++p) {
      const ProcStep& ps = step.proc[p];
      const int pi = static_cast<int>(p);
      comp[p] = ps.compute_cost(dag) / m.speed(pi);
      double s = 0, l = 0;
      for (NodeId v : ps.saves) {
        s += m.comm_g(pi, home[static_cast<std::size_t>(v)]) * dag.mu(v);
      }
      for (NodeId v : ps.loads) {
        l += m.comm_g(pi, home[static_cast<std::size_t>(v)]) * dag.mu(v);
      }
      save[p] = s;
      load[p] = l;
    }
    table.push_back(fold_step_row(comp.data(), save.data(), load.data(), np));
  }
  return table;
}

SyncCostBreakdown sum_sync_cost_table(const std::vector<SyncStepCost>& table,
                                      double L) {
  // Field-major sweeps: the three accumulators are independent, so
  // splitting the loop keeps every accumulator's own add sequence — and
  // therefore the result — bitwise identical to the interleaved fold,
  // while each sweep reads one strided stream the vectorizer can handle.
  SyncCostBreakdown out;
  for (const SyncStepCost& row : table) out.compute += row.max_compute;
  for (const SyncStepCost& row : table) out.io += row.max_save + row.max_load;
  for (std::size_t i = 0; i < table.size(); ++i) out.sync += L;
  return out;
}

SyncCostBreakdown sync_cost_breakdown(const MbspInstance& inst,
                                      const MbspSchedule& sched) {
  return sum_sync_cost_table(sync_cost_table(inst, sched),
                             inst.arch.sync_L());
}

double sync_cost(const MbspInstance& inst, const MbspSchedule& sched) {
  return sync_cost_breakdown(inst, sched).total();
}

double async_cost(const MbspInstance& inst, const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  const Machine& m = inst.arch;
  const int P = m.num_processors;
  const double g = m.g;
  const bool uniform = m.is_uniform();
  constexpr double kUnset = std::numeric_limits<double>::infinity();

  // Per-op transfer prices on heterogeneous machines (g everywhere on
  // uniform ones, where `home` stays empty and unread).
  std::vector<int> home;
  if (!uniform) home = home_groups(inst, sched);
  const auto g_of = [&](int p, NodeId v) {
    return uniform ? g : m.comm_g(p, home[static_cast<std::size_t>(v)]);
  };

  std::vector<double> gets_blue(dag.num_nodes(), kUnset);
  std::vector<int> first_save_step(dag.num_nodes(), -1);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.is_source(v)) gets_blue[v] = 0;  // sources start in slow memory
  }

  std::vector<double> now(P, 0.0);  // finishing time of last op per proc

  for (std::size_t s = 0; s < sched.steps.size(); ++s) {
    const Superstep& step = sched.steps[s];
    // Compute phases (delete ops cost 0, computes cost omega / speed).
    for (int p = 0; p < P; ++p) {
      for (const PhaseOp& op : step.proc[p].compute_phase) {
        if (op.kind != OpKind::kCompute) continue;
        if (uniform) {
          now[p] += dag.omega(op.node);
        } else {
          now[p] += dag.omega(op.node) / m.speed(p);
        }
      }
    }
    // Save phases: record Gamma candidates for the *first* saving superstep.
    for (int p = 0; p < P; ++p) {
      for (NodeId v : step.proc[p].saves) {
        now[p] += g_of(p, v) * dag.mu(v);
        if (first_save_step[v] == -1) first_save_step[v] = static_cast<int>(s);
        if (first_save_step[v] == static_cast<int>(s)) {
          gets_blue[v] = std::min(gets_blue[v], now[p]);
        }
      }
    }
    // Delete phases are free. Load phases wait for availability.
    for (int p = 0; p < P; ++p) {
      for (NodeId v : step.proc[p].loads) {
        now[p] = std::max(now[p], gets_blue[v]) + g_of(p, v) * dag.mu(v);
      }
    }
  }
  double makespan = 0;
  for (int p = 0; p < P; ++p) makespan = std::max(makespan, now[p]);
  return makespan;
}

double io_volume(const MbspInstance& inst, const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  double volume = 0;
  for (const Superstep& step : sched.steps) {
    for (const ProcStep& ps : step.proc) {
      for (NodeId v : ps.saves) volume += dag.mu(v);
      for (NodeId v : ps.loads) volume += dag.mu(v);
    }
  }
  return volume;
}

}  // namespace mbsp
