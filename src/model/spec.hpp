#pragma once
// Generic `head:key=value,...` spec strings — the shared grammar behind
// workload specs (`stencil2d:nx=8,ny=8`) and machine specs
// (`numa:groups=2x4,gin=1`). One parser, one canonicalization rule and
// one error style, so every registry reports bad specs the same way:
// naming the offending token and, where a key set is known, listing the
// valid keys (see spec_unknown_key_error).

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mbsp {

/// Parsed `head:key=value,...` string. Parameter order is preserved as
/// written; `canonical()` sorts by key.
struct SpecString {
  std::string head;  ///< the part before ':' (family / machine kind)
  std::vector<std::pair<std::string, std::string>> params;

  /// Parses `text`; on failure fills *error (naming the offending token)
  /// and returns nullopt. Empty parameters ("a:,b=1") are skipped;
  /// duplicate keys and items without '=' are errors. `what` names the
  /// head in error messages ("family name", "machine kind").
  static std::optional<SpecString> parse(const std::string& text,
                                         std::string* error = nullptr,
                                         const std::string& what = "name");

  /// nullptr when the key is absent.
  const std::string* find(const std::string& key) const;

  /// `head:params` with parameters sorted by key (just `head` when none).
  std::string canonical() const;
};

/// Typed parameter accessors over a parsed parameter list, with the
/// registries' shared validation style: bad values throw
/// std::invalid_argument naming key and value.
using SpecParamList = std::vector<std::pair<std::string, std::string>>;

/// Integer parameter (default `def` when absent) clamped from below by
/// `lo`; non-numeric, out-of-range or < lo throws.
int spec_get_int(const SpecParamList& params, const std::string& key, int def,
                 int lo = 1);

/// Double parameter (default `def` when absent); non-numeric or < lo
/// throws.
double spec_get_double(const SpecParamList& params, const std::string& key,
                       double def, double lo = 0);

/// String parameter, `def` when absent.
std::string spec_get_string(const SpecParamList& params,
                            const std::string& key, std::string def);

/// The shared "unknown parameter" message: names the offending key, the
/// holder ("family 'spmv'" / "machine kind 'numa'") and the sorted valid
/// key list — every registry's spec errors read identically.
std::string spec_unknown_key_error(const std::string& key,
                                   const std::string& holder,
                                   std::vector<std::string> valid_keys);

/// The shared "unknown name" message for registry lookups:
/// `unknown <what> '<name>' (known: a, b, c)`.
std::string spec_unknown_name_error(const std::string& name,
                                    const std::string& what,
                                    const std::vector<std::string>& known);

}  // namespace mbsp
