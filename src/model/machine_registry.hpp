#pragma once
// Central registry of machine models — the architecture-side mirror of
// SchedulerRegistry and WorkloadRegistry. A machine spec names one
// Machine up to its memory scale, which is supplied at build time (the
// workload's min_memory_r0, so machine specs compose with any DAG):
//
//   uniform  the paper's flat machine        uniform:P=8,g=1,L=10,rf=3
//   hetero   per-processor speeds/memories   hetero:P=8,speeds=1x4+2x4
//   numa     two-level comm hierarchy        numa:groups=2x4,gin=1,gout=4
//
// Specs use the shared `head:key=value,...` grammar (src/model/spec.*)
// and canonicalize exactly like workload specs: parameters sorted by
// key, entries whose value *textually* equals the declared default
// dropped. Equal canonical spellings share one name, which
// `make_machine` stores in Machine::name so batch cells and CSV
// artifacts key results by machine (the rule is textual, as for
// workloads: `speeds=1.0` is not recognized as the default `1` and
// keeps its own name). The full grammar (EBNF) and the cost semantics
// of each kind are specified in docs/MACHINES.md.
//
// Adding a kind is one `add(...)` call; `corpus sweep --machine` and
// `suite_runner --machine/--list-machines` pick the newcomer up by name
// with no CLI changes.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/model/arch.hpp"
#include "src/model/spec.hpp"

namespace mbsp {

/// One declared parameter of a machine kind, for listings and unknown-key
/// validation (mirrors WorkloadParamInfo).
struct MachineParamInfo {
  std::string key;
  std::string default_value;
  std::string help;
};

/// A named, parameterized machine kind. Implementations are stateless;
/// `build` is const, thread-safe and a pure function of (spec,
/// base_memory). Value errors are reported by throwing
/// std::invalid_argument (converted to error strings by the registry).
class MachineFamily {
 public:
  virtual ~MachineFamily() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual std::vector<MachineParamInfo> params() const = 0;

  /// Builds the machine. `spec.params` contains only declared keys (the
  /// registry validates first); `base_memory` is the memory unit the
  /// spec's `rf` factor scales (callers pass the workload's
  /// min_memory_r0). The registry fills Machine::name afterwards.
  virtual Machine build(const SpecString& spec, double base_memory) const = 0;
};

class MachineRegistry {
 public:
  /// Empty registry (tests); `global()` is the pre-populated one.
  MachineRegistry() = default;

  /// The process-wide registry with every built-in kind registered.
  /// Register custom kinds before starting batch runs; lookups are not
  /// synchronized against concurrent registration.
  static MachineRegistry& global();

  /// Registers `family` under its name(); replaces any previous holder.
  void add(std::unique_ptr<MachineFamily> family);

  /// Whether a kind of that exact name is registered (read-only,
  /// thread-safe after registration).
  bool contains(const std::string& name) const;

  /// Looks a kind up by name; nullptr when absent.
  const MachineFamily* find(const std::string& name) const;

  /// Like find(), but throws std::out_of_range naming the missing kind.
  const MachineFamily& at(const std::string& name) const;

  /// All registered kind names, sorted (deterministic listing).
  std::vector<std::string> names() const;

  std::size_t size() const { return families_.size(); }

  /// Builds the machine named by `spec` ("kind" or "kind:k=v,...") with
  /// memory unit `base_memory` (callers pass min_memory_r0 of the DAG the
  /// machine will run). The result's `name` is the canonical spec, so
  /// equal scenarios key identically everywhere. Unknown kinds or
  /// parameters and bad values fill *error — naming the offending token
  /// and listing the valid alternatives — and return nullopt.
  std::optional<Machine> make_machine(const std::string& spec,
                                      double base_memory,
                                      std::string* error = nullptr) const;

 private:
  std::vector<std::unique_ptr<MachineFamily>> families_;
};

/// Registers the built-in kinds (uniform / hetero / numa) — what
/// `global()` does on first use; exposed for registry-local tests.
void register_builtin_machines(MachineRegistry& registry);

}  // namespace mbsp
