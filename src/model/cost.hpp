#pragma once
// Cost functions of Section 3.3.
//
// Synchronous:   cost(S) = sum over supersteps of
//                max_p comp + max_p save + max_p load + L.
// Asynchronous:  finishing-time recursion gamma over each processor's flat
//                operation sequence; a LOAD of v additionally waits for
//                Gamma(v), the finishing time of the earliest SAVE of v in
//                the first superstep that saves v (0 for DAG sources, which
//                start blue). Cost = max over processors of the last
//                finishing time.

#include <vector>

#include "src/model/instance.hpp"
#include "src/model/schedule.hpp"

namespace mbsp {

/// Per-superstep breakdown of the synchronous cost.
struct SyncCostBreakdown {
  double compute = 0;  ///< sum of per-superstep max compute-phase costs
  double io = 0;       ///< sum of max save + max load costs
  double sync = 0;     ///< L * number of supersteps
  double total() const { return compute + io + sync; }
};

SyncCostBreakdown sync_cost_breakdown(const MbspInstance& inst,
                                      const MbspSchedule& sched);

double sync_cost(const MbspInstance& inst, const MbspSchedule& sched);

/// Asynchronous makespan (requires a *valid* schedule: every load must be
/// preceded by a save of the value, which validate() guarantees).
double async_cost(const MbspInstance& inst, const MbspSchedule& sched);

/// Total I/O volume (sum of mu over all saves and loads), a model-agnostic
/// measure used by ablation benches.
double io_volume(const MbspInstance& inst, const MbspSchedule& sched);

}  // namespace mbsp
