#pragma once
// Cost functions of Section 3.3.
//
// Synchronous:   cost(S) = sum over supersteps of
//                max_p comp + max_p save + max_p load + L.
// Asynchronous:  finishing-time recursion gamma over each processor's flat
//                operation sequence; a LOAD of v additionally waits for
//                Gamma(v), the finishing time of the earliest SAVE of v in
//                the first superstep that saves v (0 for DAG sources, which
//                start blue). Cost = max over processors of the last
//                finishing time.

#include <vector>

#include "src/model/instance.hpp"
#include "src/model/schedule.hpp"

namespace mbsp {

/// One superstep's row of the synchronous cost: the per-phase maxima over
/// processors. The synchronous objective is separable per superstep, which
/// is what makes incremental (dirty-superstep) re-costing possible: the
/// LNS evaluation engine caches these rows and re-derives only the rows a
/// move invalidated.
struct SyncStepCost {
  double max_compute = 0;  ///< max_p compute-phase cost
  double max_save = 0;     ///< max_p save-phase cost
  double max_load = 0;     ///< max_p load-phase cost
};

/// Per-superstep table of the synchronous cost, one row per superstep of
/// `sched` (in order).
std::vector<SyncStepCost> sync_cost_table(const MbspInstance& inst,
                                          const MbspSchedule& sched);

/// Totals of the synchronous cost.
struct SyncCostBreakdown {
  double compute = 0;  ///< sum of per-superstep max compute-phase costs
  double io = 0;       ///< sum of max save + max load costs
  double sync = 0;     ///< L * number of supersteps
  double total() const { return compute + io + sync; }
};

/// Folds a per-step table into the three totals (row order preserved, so
/// the floating-point sums are reproducible: full and incremental
/// evaluation agree bitwise).
SyncCostBreakdown sum_sync_cost_table(const std::vector<SyncStepCost>& table,
                                      double L);

SyncCostBreakdown sync_cost_breakdown(const MbspInstance& inst,
                                      const MbspSchedule& sched);

double sync_cost(const MbspInstance& inst, const MbspSchedule& sched);

/// Asynchronous makespan (requires a *valid* schedule: every load must be
/// preceded by a save of the value, which validate() guarantees).
double async_cost(const MbspInstance& inst, const MbspSchedule& sched);

/// Total I/O volume (sum of mu over all saves and loads), a model-agnostic
/// measure used by ablation benches.
double io_volume(const MbspInstance& inst, const MbspSchedule& sched);

}  // namespace mbsp
