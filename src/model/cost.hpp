#pragma once
// Cost functions of Section 3.3, generalized to heterogeneous machines
// (docs/MACHINES.md specifies the exact semantics; uniform machines run
// the historical code paths verbatim).
//
// Synchronous:   cost(S) = sum over supersteps of
//                max_p comp(p)/speed(p) + max_p save + max_p load
//                + sync_L.
//                Transfer units are priced per operation: processor p
//                saving or loading a value homed in group h pays
//                comm_g(p, h) per data unit (g on uniform machines).
// Asynchronous:  finishing-time recursion gamma over each processor's flat
//                operation sequence; a LOAD of v additionally waits for
//                Gamma(v), the finishing time of the earliest SAVE of v in
//                the first superstep that saves v (0 for DAG sources, which
//                start blue). Cost = max over processors of the last
//                finishing time. Computes scale by 1/speed(p), transfers
//                by comm_g against the same home assignment.
//
// A value's *home group* is the communication group of its first saver:
// scanning supersteps in order, processors 0..P-1 within a superstep,
// each processor's save list in order, the first SAVE of v pins v to the
// saver's group segment. Values never saved — DAG sources — live in far
// memory and always transfer at g_out.

#include <vector>

#include "src/model/instance.hpp"
#include "src/model/schedule.hpp"

namespace mbsp {

/// One superstep's row of the synchronous cost: the per-phase maxima over
/// processors. The synchronous objective is separable per superstep, which
/// is what makes incremental (dirty-superstep) re-costing possible: the
/// LNS evaluation engine caches these rows and re-derives only the rows a
/// move invalidated.
struct SyncStepCost {
  double max_compute = 0;  ///< max_p compute-phase cost
  double max_save = 0;     ///< max_p save-phase cost
  double max_load = 0;     ///< max_p load-phase cost
};

/// Per-superstep table of the synchronous cost, one row per superstep of
/// `sched` (in order). Machine-aware: rows carry per-processor speed
/// scaling and group-aware transfer costs on heterogeneous machines.
std::vector<SyncStepCost> sync_cost_table(const MbspInstance& inst,
                                          const MbspSchedule& sched);

/// Home group of every value under `sched`: the group of its first saver
/// (supersteps in order; processors 0..P-1 within a superstep; save-list
/// order within a processor), or -1 for values never saved (DAG sources,
/// which live in far memory). This is the assignment the group-aware
/// transfer costs above are defined against.
std::vector<int> home_groups(const MbspInstance& inst,
                             const MbspSchedule& sched);

/// Totals of the synchronous cost.
struct SyncCostBreakdown {
  double compute = 0;  ///< sum of per-superstep max compute-phase costs
  double io = 0;       ///< sum of max save + max load costs
  double sync = 0;     ///< L * number of supersteps
  double total() const { return compute + io + sync; }
};

/// Folds a per-step table into the three totals (row order preserved, so
/// the floating-point sums are reproducible: full and incremental
/// evaluation agree bitwise). `L` is the effective per-superstep latency
/// (Machine::sync_L on heterogeneous machines).
SyncCostBreakdown sum_sync_cost_table(const std::vector<SyncStepCost>& table,
                                      double L);

SyncCostBreakdown sync_cost_breakdown(const MbspInstance& inst,
                                      const MbspSchedule& sched);

double sync_cost(const MbspInstance& inst, const MbspSchedule& sched);

/// Asynchronous makespan (requires a *valid* schedule: every load must be
/// preceded by a save of the value, which validate() guarantees).
double async_cost(const MbspInstance& inst, const MbspSchedule& sched);

/// Total I/O volume (sum of mu over all saves and loads), a model-agnostic
/// measure used by ablation benches.
double io_volume(const MbspInstance& inst, const MbspSchedule& sched);

}  // namespace mbsp
