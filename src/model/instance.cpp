#include "src/model/instance.hpp"

#include <algorithm>

namespace mbsp {

double min_memory_r0(const ComputeDag& dag) {
  double r0 = 0;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    r0 = std::max(r0, dag.mu(v));
    if (dag.is_source(v)) continue;
    double need = dag.mu(v);
    for (NodeId u : dag.parents(v)) need += dag.mu(u);
    r0 = std::max(r0, need);
  }
  return r0;
}

}  // namespace mbsp
