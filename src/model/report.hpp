#pragma once
// Human-readable analysis of an MBSP schedule: per-superstep cost
// breakdown, processor utilization, I/O volume, recomputation count.
// Used by examples and handy when debugging schedulers.

#include <string>

#include "src/model/cost.hpp"

namespace mbsp {

struct ScheduleStats {
  int supersteps = 0;
  double compute_cost = 0;      ///< synchronous compute term
  double io_cost = 0;           ///< synchronous I/O term
  double sync_cost_total = 0;   ///< full synchronous cost
  double async_cost_total = 0;
  double io_volume = 0;         ///< sum of mu over saves + loads
  std::size_t loads = 0, saves = 0, computes = 0, deletes = 0;
  std::size_t recomputed_nodes = 0;  ///< nodes computed more than once
  /// Average over supersteps of (max_p compute) / (mean_p compute),
  /// restricted to supersteps with any compute; 1.0 = perfectly balanced.
  double compute_imbalance = 1.0;
};

ScheduleStats schedule_stats(const MbspInstance& inst,
                             const MbspSchedule& sched);

/// Multi-line text report (stats + per-superstep table).
std::string schedule_report(const MbspInstance& inst,
                            const MbspSchedule& sched);

}  // namespace mbsp
