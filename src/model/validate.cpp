#include "src/model/validate.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace mbsp {

namespace {

// Small epsilon so accumulated floating-point weights never spuriously
// violate an exactly-tight memory bound.
constexpr double kMemEps = 1e-9;

struct SimState {
  std::vector<std::vector<char>> red;   // red[p][v]
  std::vector<double> red_weight;       // cached sum of mu over red[p]
  std::vector<char> blue;               // blue[v]
};

std::string where(std::size_t step, std::size_t proc) {
  std::ostringstream out;
  out << "superstep " << step << ", processor " << proc << ": ";
  return out.str();
}

}  // namespace

ValidationResult validate(const MbspInstance& inst,
                          const MbspSchedule& sched) {
  const ComputeDag& dag = inst.dag;
  const int P = inst.arch.num_processors;
  const NodeId n = dag.num_nodes();
  // Per-processor capacities (all equal to fast_memory on uniform machines).
  std::vector<double> r(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    r[static_cast<std::size_t>(p)] = inst.arch.memory(p);
  }

  SimState st;
  st.red.assign(P, std::vector<char>(n, 0));
  st.red_weight.assign(P, 0.0);
  st.blue.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (dag.is_source(v)) st.blue[v] = 1;
  }

  auto fail = [](std::string msg) {
    return ValidationResult{false, std::move(msg)};
  };

  for (std::size_t s = 0; s < sched.steps.size(); ++s) {
    const Superstep& step = sched.steps[s];
    if (static_cast<int>(step.proc.size()) != P) {
      return fail("superstep " + std::to_string(s) +
                  ": wrong number of processors");
    }
    // Compute phase (COMPUTE / DELETE), independently per processor.
    for (int p = 0; p < P; ++p) {
      for (const PhaseOp& op : step.proc[p].compute_phase) {
        const NodeId v = op.node;
        if (v < 0 || v >= n) return fail(where(s, p) + "bad node id");
        if (op.kind == OpKind::kDelete) {
          if (!st.red[p][v]) {
            return fail(where(s, p) + "DELETE " + std::to_string(v) +
                        " without red pebble");
          }
          st.red[p][v] = 0;
          st.red_weight[p] -= dag.mu(v);
          continue;
        }
        if (dag.is_source(v)) {
          return fail(where(s, p) + "COMPUTE on source node " +
                      std::to_string(v));
        }
        for (NodeId u : dag.parents(v)) {
          if (!st.red[p][u]) {
            return fail(where(s, p) + "COMPUTE " + std::to_string(v) +
                        " missing red parent " + std::to_string(u));
          }
        }
        if (!st.red[p][v]) {
          st.red[p][v] = 1;
          st.red_weight[p] += dag.mu(v);
          if (st.red_weight[p] > r[p] + kMemEps) {
            return fail(where(s, p) + "memory bound exceeded at COMPUTE " +
                        std::to_string(v));
          }
        }
      }
    }
    // Save phase; B is updated as the union of all processors' saves.
    std::vector<NodeId> newly_blue;
    for (int p = 0; p < P; ++p) {
      for (NodeId v : step.proc[p].saves) {
        if (v < 0 || v >= n) return fail(where(s, p) + "bad node id");
        if (!st.red[p][v]) {
          return fail(where(s, p) + "SAVE " + std::to_string(v) +
                      " without red pebble");
        }
        newly_blue.push_back(v);
      }
    }
    for (NodeId v : newly_blue) st.blue[v] = 1;
    // Delete phase.
    for (int p = 0; p < P; ++p) {
      for (NodeId v : step.proc[p].deletes) {
        if (v < 0 || v >= n) return fail(where(s, p) + "bad node id");
        if (!st.red[p][v]) {
          return fail(where(s, p) + "DELETE " + std::to_string(v) +
                      " without red pebble");
        }
        st.red[p][v] = 0;
        st.red_weight[p] -= dag.mu(v);
      }
    }
    // Load phase.
    for (int p = 0; p < P; ++p) {
      for (NodeId v : step.proc[p].loads) {
        if (v < 0 || v >= n) return fail(where(s, p) + "bad node id");
        if (!st.blue[v]) {
          return fail(where(s, p) + "LOAD " + std::to_string(v) +
                      " without blue pebble");
        }
        if (!st.red[p][v]) {
          st.red[p][v] = 1;
          st.red_weight[p] += dag.mu(v);
          if (st.red_weight[p] > r[p] + kMemEps) {
            return fail(where(s, p) + "memory bound exceeded at LOAD " +
                        std::to_string(v));
          }
        }
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    if (dag.is_sink(v) && !st.blue[v]) {
      return fail("terminal configuration: sink " + std::to_string(v) +
                  " has no blue pebble");
    }
  }
  return {};
}

void validate_or_die(const MbspInstance& inst, const MbspSchedule& sched) {
  const ValidationResult res = validate(inst, sched);
  if (!res.ok) {
    std::fprintf(stderr, "invalid MBSP schedule: %s\n%s", res.error.c_str(),
                 sched.to_string(inst).c_str());
    std::abort();
  }
}

}  // namespace mbsp
