#pragma once
// mbspd: the scheduler-as-a-service daemon core (docs/DAEMON.md). A
// long-running server on a local Unix-domain socket that accepts
// scheduling requests in the length-prefixed binary protocol
// (protocol.hpp), dispatches the solves onto the repo's ThreadPool — the
// pool's task queue is the admission queue, so concurrent CPU work is
// bounded by solver_threads while connections merely block — and streams
// status / progress / final-plan frames back per request.
//
// Requests are memoized in a ScheduleCache keyed by (canonical DAG hash,
// canonical machine name, scheduler spec): exact hits are answered from
// the cache with no solver invocation (bitwise-identical plan, by the
// determinism contract), near-miss requests — same key, more budget —
// warm-start the LNS from the cached incumbent. A bounded LRU DAG store
// keeps recently seen DAGs resident so follow-up requests can pin the
// canonical hash instead of resending megabytes of DAG.
//
// Lifecycle: start() binds and spawns the accept thread; stop() — also
// the SIGTERM path of examples/mbspd.cpp — stops accepting, answers any
// late request with kShuttingDown, drains every in-flight solve (clients
// still receive their final frames), joins all threads and removes the
// socket file. The server object is in-process embeddable, which is how
// the tests and bench_daemon run it.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/daemon/protocol.hpp"
#include "src/daemon/schedule_cache.hpp"
#include "src/runner/scheduler_registry.hpp"
#include "src/util/thread_pool.hpp"

namespace mbsp::daemon {

struct MbspdOptions {
  std::string socket_path;        ///< required; parent dir must exist
  std::size_t cache_capacity = 256;     ///< ScheduleCache entries
  std::size_t dag_store_capacity = 32;  ///< resident DAGs for pinned hashes
  std::size_t solver_threads = 0;       ///< 0 = hardware concurrency
  std::size_t max_request_bytes = 64u << 20;  ///< per-frame payload limit
  int backlog = 64;
};

class MbspdServer {
 public:
  explicit MbspdServer(MbspdOptions options,
                       const SchedulerRegistry& registry =
                           SchedulerRegistry::global());
  ~MbspdServer();

  MbspdServer(const MbspdServer&) = delete;
  MbspdServer& operator=(const MbspdServer&) = delete;

  /// Binds the socket and starts serving; false (with *error) when the
  /// socket cannot be created. Idempotent once running.
  bool start(std::string* error = nullptr);

  /// Graceful drain: stop accepting, finish in-flight requests (their
  /// clients receive complete replies), join every thread, unlink the
  /// socket. Safe to call multiple times and from signal-driven paths
  /// outside the handler itself.
  void stop();

  bool running() const { return running_.load(); }

  /// Counter snapshot (also served over kStatsRequest).
  DaemonStats stats() const;

  const MbspdOptions& options() const { return options_; }

 private:
  struct ConnThread {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void reap_finished_connections();
  void handle_connection(int fd);
  /// One schedule request end-to-end; false when the connection died.
  bool handle_schedule(int fd, const std::string& payload);
  /// One REPAIR request end-to-end (docs/REPAIR.md): resolve the base
  /// scenario, fetch its cached incumbent, patch + polish it along the
  /// request's InstanceDelta (falling back to a from-scratch solve of the
  /// mutated instance on a cache miss), and memoize the result under the
  /// mutated scenario's own key.
  bool handle_repair(int fd, const std::string& payload);
  bool send_error(int fd, WireError code, const std::string& message);
  /// Waits for fd readability or server stop; false on stop/hangup.
  bool wait_readable(int fd);

  const MbspdOptions options_;
  const SchedulerRegistry& registry_;
  ScheduleCache cache_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // write once on stop; never drained
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> solver_pool_;

  std::mutex conn_mutex_;
  std::vector<std::unique_ptr<ConnThread>> connections_;

  // Bounded LRU of resident DAGs by canonical hash (pinned-hash requests).
  std::mutex dag_mutex_;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const ComputeDag>>>
      dag_store_;  // front = most recently used; linear scan (small)

  std::shared_ptr<const ComputeDag> find_dag(std::uint64_t hash);
  void store_dag(std::uint64_t hash, std::shared_ptr<const ComputeDag> dag);

  mutable std::mutex stats_mutex_;
  std::uint64_t requests_ = 0;
  std::uint64_t solver_calls_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t repair_requests_ = 0;
  std::uint64_t repair_hits_ = 0;
  std::atomic<std::uint64_t> active_connections_{0};
};

}  // namespace mbsp::daemon
