#include "src/daemon/client.hpp"

#include "src/daemon/socket_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace mbsp::daemon {

namespace {

/// Replies have no server-imposed size cap; bound reads generously so a
/// corrupt length prefix cannot make the client allocate the universe.
constexpr std::size_t kMaxReplyBytes = 1u << 30;

}  // namespace

bool MbspClient::connect(const std::string& socket_path, std::string* error) {
  close();
  fd_ = unix_connect(socket_path, error);
  return fd_ >= 0;
}

void MbspClient::close() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

bool MbspClient::read_reply(Frame* frame, std::string* error) {
  WireError code;
  bool clean_eof;
  return read_frame(fd_, frame, kMaxReplyBytes, /*accept_responses=*/true,
                    &code, error, &clean_eof);
}

bool MbspClient::send_raw(const std::string& bytes, std::string* error) {
  // Bytes go out exactly as given (write_frame would add a header) — the
  // protocol-robustness tests inject malformed frames through this.
#if defined(__unix__) || defined(__APPLE__)
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) {
      if (error != nullptr) *error = "raw write failed";
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
#else
  if (error != nullptr) *error = "sockets unsupported on this platform";
  return false;
#endif
}

bool MbspClient::ping(std::string* error) {
  if (!write_frame(fd_, FrameType::kPing, "", error)) return false;
  Frame frame;
  if (!read_reply(&frame, error)) return false;
  if (frame.type != FrameType::kPong) {
    if (error != nullptr) *error = "expected pong, got another frame";
    return false;
  }
  return true;
}

bool MbspClient::stats(DaemonStats* out, std::string* error) {
  if (!write_frame(fd_, FrameType::kStatsRequest, "", error)) return false;
  Frame frame;
  if (!read_reply(&frame, error)) return false;
  if (frame.type != FrameType::kStatsReply) {
    if (error != nullptr) *error = "expected stats reply, got another frame";
    return false;
  }
  return decode_stats(frame.payload, out, error);
}

bool MbspClient::run(const ScheduleRequest& request, Outcome* outcome,
                     std::string* error) {
  *outcome = Outcome{};
  if (!write_frame(fd_, FrameType::kScheduleRequest,
                   encode_schedule_request(request), error)) {
    return false;
  }
  return consume_reply_stream(outcome, error);
}

bool MbspClient::repair(const RepairRequest& request, Outcome* outcome,
                        std::string* error) {
  *outcome = Outcome{};
  if (!write_frame(fd_, FrameType::kRepairRequest,
                   encode_repair_request(request), error)) {
    return false;
  }
  return consume_reply_stream(outcome, error);
}

bool MbspClient::consume_reply_stream(Outcome* outcome, std::string* error) {
  while (true) {
    Frame frame;
    if (!read_reply(&frame, error)) return false;
    switch (frame.type) {
      case FrameType::kStatus: {
        std::string message;
        if (!decode_status(frame.payload, &message, error)) return false;
        outcome->statuses.push_back(std::move(message));
        break;
      }
      case FrameType::kProgress: {
        ProgressFrame progress;
        if (!decode_progress(frame.payload, &progress, error)) return false;
        outcome->progress.push_back(progress);
        break;
      }
      case FrameType::kFinal:
        if (!decode_final_result(frame.payload, &outcome->final, error)) {
          return false;
        }
        outcome->ok = true;
        return true;
      case FrameType::kError:
        if (!decode_error(frame.payload, &outcome->error, error)) {
          return false;
        }
        outcome->ok = false;
        return true;  // transport fine; the daemon answered with a typed error
      default:
        if (error != nullptr) {
          *error = "unexpected frame type in schedule reply stream";
        }
        return false;
    }
  }
}

}  // namespace mbsp::daemon
