#pragma once
// Wire protocol of the mbspd scheduling daemon (docs/DAEMON.md): a
// length-prefixed binary framing over a local stream socket, plus the
// encoders/decoders for every frame payload. The framing is:
//
//   "MBPD"                4-byte magic, every frame
//   u8  type              FrameType below
//   u32 payload_len       little-endian; bounded by the server's
//                         max_request_bytes for client->server frames
//   payload_len bytes     type-specific payload
//
// All integers are little-endian regardless of host, mirroring the
// mbsp-dag v2 format (docs/FORMATS.md). Decoders never trust lengths:
// every read is bounds-checked and a malformed payload produces a typed
// error naming the byte offset at which decoding failed — the dag_io
// error style — so protocol bugs are diagnosable from the error text
// alone and the daemon never crashes on garbage input.
//
// The payload encoders are pure functions of their structs and the
// decoders are pure functions of the bytes, so the whole protocol layer
// is unit-testable without sockets (tests/test_daemon_protocol.cpp);
// socket transport lives in socket_io.hpp.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/holistic/repair.hpp"  // InstanceDelta (REPAIR frames)
#include "src/twostage/compute_plan.hpp"

namespace mbsp::daemon {

/// First byte sequence of every frame.
inline constexpr char kFrameMagic[4] = {'M', 'B', 'P', 'D'};
/// Fixed frame header size: magic + type + payload length.
inline constexpr std::size_t kFrameHeaderSize = 4 + 1 + 4;
/// Protocol version carried in every schedule request.
inline constexpr std::uint8_t kProtocolVersion = 1;

enum class FrameType : std::uint8_t {
  // client -> server
  kScheduleRequest = 0x01,
  kStatsRequest = 0x02,
  kPing = 0x03,
  kRepairRequest = 0x04,
  // server -> client
  kStatus = 0x10,
  kProgress = 0x11,
  kStatsReply = 0x12,
  kPong = 0x13,
  kFinal = 0x14,
  kError = 0x15,
};

/// True for the frame types a client may send (everything else on the
/// server's read side is a kBadFrameType protocol error).
bool is_request_frame(FrameType type);

/// Typed protocol / request errors, carried in kError frames. Stable
/// numeric values: clients match on the code, not the message.
enum class WireError : std::uint16_t {
  kNone = 0,
  kBadMagic = 1,        ///< frame did not start with "MBPD"
  kBadFrameType = 2,    ///< unknown or non-request frame type
  kOversizedFrame = 3,  ///< declared payload exceeds the request-size limit
  kTruncatedFrame = 4,  ///< peer closed mid-frame
  kBadRequest = 5,      ///< payload decode error (message names the offset)
  kBadVersion = 6,      ///< unsupported protocol version
  kUnknownScheduler = 7,
  kBadMachineSpec = 8,
  kBadDag = 9,           ///< inline DAG payload failed to parse
  kUnknownDagHash = 10,  ///< hash-pinned request; DAG not cached server-side
  kDeadlineExpired = 11,
  kShuttingDown = 12,
  kInternal = 13,
  kBadDelta = 14,  ///< REPAIR delta failed to decode or to apply
};

/// Stable lower-case name of a WireError ("bad-magic", ...), for CLI
/// output and test assertions.
const char* wire_error_name(WireError code);

/// One decoded frame (header already validated; payload still encoded).
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Renders the fixed header + payload as bytes ready for the socket.
std::string encode_frame(FrameType type, const std::string& payload);

// ---------------------------------------------------------------------------
// Bounds-checked little-endian readers/writers. WireReader tracks the
// current offset and latches the first error ("truncated u32 at byte 17
// (need 4, have 2)"), so decoders can chain reads and report once.

class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// u32 length prefix + raw bytes.
  void str(const std::string& s);
  /// u64 length prefix + raw bytes (large blobs: inline DAG payloads).
  void blob(const std::string& s);

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class WireReader {
 public:
  WireReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  bool u8(std::uint8_t* v);
  bool u16(std::uint16_t* v);
  bool u32(std::uint32_t* v);
  bool u64(std::uint64_t* v);
  bool i64(std::int64_t* v);
  bool f64(double* v);
  /// u32-prefixed string; `what` names the field in error messages.
  bool str(std::string* v, const char* what);
  /// u64-prefixed blob.
  bool blob(std::string* v, const char* what);

  /// True when every byte has been consumed; otherwise latches a
  /// "trailing garbage" error naming the offset.
  bool expect_end();

  bool ok() const { return error_.empty(); }
  std::size_t offset() const { return offset_; }
  /// First decode error, naming the byte offset; "" when ok().
  const std::string& error() const { return error_; }

 private:
  bool take(const char* what, std::size_t n, const void** out);
  void fail(const char* what, std::size_t need);

  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Payloads.

/// One scheduling request. Either `dag_bytes` carries a full mbsp-dag
/// payload (v2 binary or v1 text, auto-detected), or it is empty and
/// `dag_hash` pins a canonical hash the server already knows (from its
/// schedule cache or its DAG store).
struct ScheduleRequest {
  std::uint8_t version = kProtocolVersion;
  bool no_cache = false;       ///< bypass the schedule cache (cold solve)
  std::uint64_t dag_hash = 0;  ///< pinned hash; 0 when dag_bytes is set
  std::string dag_bytes;       ///< inline DAG payload ("" when pinned)
  std::string machine_spec = "uniform:P=4";
  std::string scheduler = "lns";
  std::uint8_t cost_model = 0;  ///< 0 = synchronous, 1 = asynchronous
  double budget_ms = 0;         ///< 0 = no wall-clock deadline (see docs)
  std::int64_t max_iterations = 2'000'000;
  std::uint64_t seed = 42;
  /// Server-side deadline in ms, measured from request receipt and
  /// covering queue wait + solve; 0 = none. Expired requests are answered
  /// with kDeadlineExpired instead of being solved.
  double deadline_ms = 0;
};

std::string encode_schedule_request(const ScheduleRequest& request);
bool decode_schedule_request(const std::string& payload,
                             ScheduleRequest* request, std::string* error);

/// InstanceDelta codec: u32 op count, then per op the fixed field tuple
/// (u8 kind, i64 u, i64 v, f64 omega, f64 mu, i64 proc, f64 capacity).
/// Unknown op kinds are a decode error naming the op index.
void encode_instance_delta(WireWriter& w, const InstanceDelta& delta);
bool decode_instance_delta(WireReader& r, InstanceDelta* delta);

/// A repair request (docs/REPAIR.md): the fields identify the BASE
/// scenario exactly like a ScheduleRequest — the server resolves the base
/// DAG (inline bytes or pinned hash) and looks the (base scenario,
/// scheduler) incumbent up in its schedule cache — and `delta` is the
/// InstanceDelta to repair along. On a cache miss the server solves the
/// mutated instance from scratch (CacheStatus::kCold in the final frame);
/// otherwise it patches + polishes the incumbent (kRepaired).
struct RepairRequest {
  std::uint8_t version = kProtocolVersion;
  bool no_cache = false;       ///< skip the incumbent lookup (cold re-solve)
  std::uint64_t dag_hash = 0;  ///< BASE dag: pinned hash, or 0 with bytes
  std::string dag_bytes;       ///< inline BASE dag payload ("" when pinned)
  std::string machine_spec = "uniform:P=4";
  std::string scheduler = "lns";
  std::uint8_t cost_model = 0;  ///< 0 = synchronous, 1 = asynchronous
  double budget_ms = 0;
  std::int64_t max_iterations = 2'000'000;
  std::uint64_t seed = 42;
  double deadline_ms = 0;
  InstanceDelta delta;
};

std::string encode_repair_request(const RepairRequest& request);
bool decode_repair_request(const std::string& payload, RepairRequest* request,
                           std::string* error);

/// How the final plan was obtained (FinalResult::cache).
enum class CacheStatus : std::uint8_t {
  kCold = 0,   ///< solved, no usable cache entry
  kExact = 1,  ///< served from cache, no solver invocation
  kWarm = 2,   ///< solver warm-started from the cached incumbent
  kRepaired = 3,  ///< cached incumbent repaired along a REPAIR delta
};

const char* cache_status_name(CacheStatus status);

/// Terminal reply of a schedule request: the plan plus the metrics a
/// batch cell would report, keyed exactly like the schedule cache.
struct FinalResult {
  std::uint64_t dag_hash = 0;
  std::string machine;    ///< canonical machine name
  std::string scheduler;  ///< scheduler name
  std::uint8_t cost_model = 0;
  CacheStatus cache = CacheStatus::kCold;
  double cost = 0;
  double baseline_cost = 0;
  double io_volume = 0;
  std::uint32_t supersteps = 0;
  ComputePlan plan;
};

std::string encode_final_result(const FinalResult& result);
bool decode_final_result(const std::string& payload, FinalResult* result,
                         std::string* error);

/// Deterministic plan serialization (num_procs, then per-processor
/// occurrence streams): equal plans encode to equal bytes, so "bitwise
/// identical plan" is byte equality of this encoding.
void encode_plan(WireWriter& w, const ComputePlan& plan);
bool decode_plan(WireReader& r, ComputePlan* plan);

/// Progress frame: the incumbent cost at a solve milestone.
struct ProgressFrame {
  std::uint8_t stage = 0;  ///< 0 = warm start / baseline, 1 = incumbent
  double cost = 0;
  std::int64_t iterations = 0;
};

std::string encode_progress(const ProgressFrame& progress);
bool decode_progress(const std::string& payload, ProgressFrame* progress,
                     std::string* error);

/// Status frame payload (free-form phase message: "queued", "solving").
std::string encode_status(const std::string& message);
bool decode_status(const std::string& payload, std::string* message,
                   std::string* error);

/// Error frame payload.
struct ErrorFrame {
  WireError code = WireError::kNone;
  std::string message;
};

std::string encode_error(const ErrorFrame& err);
bool decode_error(const std::string& payload, ErrorFrame* err,
                  std::string* error);

/// Daemon-wide counters served by kStatsRequest. The cache_* fields
/// mirror ScheduleCacheStats; solver_calls counts actual scheduler
/// invocations (exact cache hits do not solve — the acceptance check of
/// docs/DAEMON.md).
struct DaemonStats {
  std::uint64_t requests = 0;  ///< schedule requests received
  std::uint64_t exact_hits = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t solver_calls = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_capacity = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t repair_requests = 0;  ///< REPAIR frames received
  std::uint64_t repair_hits = 0;  ///< repairs served from a cached incumbent
};

std::string encode_stats(const DaemonStats& stats);
bool decode_stats(const std::string& payload, DaemonStats* stats,
                  std::string* error);

}  // namespace mbsp::daemon
