#pragma once
// Blocking socket transport for the mbspd wire protocol: frame read/write
// over a connected stream socket fd, shared by the server and the client
// library. POSIX-only (Unix-domain sockets); on other platforms every
// function fails with a clear message so the library still links.
//
// read_frame never trusts the peer: the magic, the frame type and the
// declared payload length are validated before any payload byte is read,
// and each failure carries a typed WireError (bad-magic / bad-frame-type /
// oversized-frame / truncated-frame) plus a message naming the offending
// byte, so the server can answer garbage with a diagnosis instead of
// dying. Writes use MSG_NOSIGNAL (a client hangup surfaces as an error
// return, not SIGPIPE).

#include <cstdint>
#include <string>

#include "src/daemon/protocol.hpp"

namespace mbsp::daemon {

/// Reads exactly one frame. `accept_responses` selects the validity set:
/// the server only accepts request frames, the client only responses.
/// Returns true on success; on failure fills *code / *error and, for
/// kClosed (clean EOF at a frame boundary), sets *clean_eof.
bool read_frame(int fd, Frame* frame, std::size_t max_payload,
                bool accept_responses, WireError* code, std::string* error,
                bool* clean_eof);

/// Writes one whole frame; false when the peer is gone (EPIPE &c).
bool write_frame(int fd, FrameType type, const std::string& payload,
                 std::string* error);

/// Connects to a Unix-domain stream socket; returns the fd or -1.
int unix_connect(const std::string& path, std::string* error);

/// Creates, binds and listens on a Unix-domain stream socket (unlinking a
/// stale file at `path` first); returns the fd or -1.
int unix_listen(const std::string& path, int backlog, std::string* error);

}  // namespace mbsp::daemon
