#include "src/daemon/socket_io.hpp"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace mbsp::daemon {

#if defined(__unix__) || defined(__APPLE__)

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;  // macOS: callers must ignore SIGPIPE
#endif

/// Reads exactly `size` bytes; returns the byte count read before EOF /
/// error (== size on success). Retries EINTR.
std::size_t read_exact(int fd, void* buffer, std::size_t size) {
  auto* out = static_cast<char*>(buffer);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
    } else if (n == 0) {
      break;  // EOF
    } else if (errno != EINTR) {
      break;
    }
  }
  return got;
}

bool write_all(int fd, const void* buffer, std::size_t size,
               std::string* error) {
  const auto* data = static_cast<const char*>(buffer);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, kSendFlags);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      if (error != nullptr) {
        *error = "write failed: " + std::string(std::strerror(errno));
      }
      return false;
    }
  }
  return true;
}

}  // namespace

bool read_frame(int fd, Frame* frame, std::size_t max_payload,
                bool accept_responses, WireError* code, std::string* error,
                bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  unsigned char header[kFrameHeaderSize];
  const std::size_t got = read_exact(fd, header, sizeof header);
  if (got == 0) {
    if (clean_eof != nullptr) *clean_eof = true;
    if (code != nullptr) *code = WireError::kTruncatedFrame;
    if (error != nullptr) *error = "connection closed";
    return false;
  }
  if (got < sizeof header) {
    if (code != nullptr) *code = WireError::kTruncatedFrame;
    if (error != nullptr) {
      *error = "truncated frame header: got " + std::to_string(got) + " of " +
               std::to_string(sizeof header) + " bytes";
    }
    return false;
  }
  if (std::memcmp(header, kFrameMagic, sizeof kFrameMagic) != 0) {
    if (code != nullptr) *code = WireError::kBadMagic;
    if (error != nullptr) {
      *error = "bad frame magic at byte 0 (expected \"MBPD\")";
    }
    return false;
  }
  const auto type = static_cast<FrameType>(header[4]);
  const bool valid_type =
      accept_responses
          ? (type == FrameType::kStatus || type == FrameType::kProgress ||
             type == FrameType::kStatsReply || type == FrameType::kPong ||
             type == FrameType::kFinal || type == FrameType::kError)
          : is_request_frame(type);
  if (!valid_type) {
    if (code != nullptr) *code = WireError::kBadFrameType;
    if (error != nullptr) {
      *error = "unknown frame type 0x" + std::to_string(header[4]) +
               " at byte 4";
    }
    return false;
  }
  std::uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<std::uint32_t>(header[5 + i]) << (8 * i);
  }
  if (payload_len > max_payload) {
    if (code != nullptr) *code = WireError::kOversizedFrame;
    if (error != nullptr) {
      *error = "frame declares " + std::to_string(payload_len) +
               " payload bytes at byte 5; the limit is " +
               std::to_string(max_payload);
    }
    return false;
  }
  frame->type = type;
  frame->payload.resize(payload_len);
  if (payload_len > 0) {
    const std::size_t body = read_exact(fd, frame->payload.data(),
                                        payload_len);
    if (body < payload_len) {
      if (code != nullptr) *code = WireError::kTruncatedFrame;
      if (error != nullptr) {
        *error = "truncated frame payload: got " + std::to_string(body) +
                 " of the " + std::to_string(payload_len) +
                 " bytes declared at byte 5";
      }
      return false;
    }
  }
  if (code != nullptr) *code = WireError::kNone;
  return true;
}

bool write_frame(int fd, FrameType type, const std::string& payload,
                 std::string* error) {
  const std::string bytes = encode_frame(type, payload);
  return write_all(fd, bytes.data(), bytes.size(), error);
}

int unix_connect(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "socket(): " + std::string(std::strerror(errno));
    }
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (error != nullptr) {
      *error = "cannot connect to " + path + ": " +
               std::string(std::strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

int unix_listen(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "socket(): " + std::string(std::strerror(errno));
    }
    return -1;
  }
  ::unlink(path.c_str());  // a stale socket file from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) {
      *error = "cannot bind " + path + ": " +
               std::string(std::strerror(errno));
    }
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    if (error != nullptr) {
      *error = "listen(): " + std::string(std::strerror(errno));
    }
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

#else  // !(__unix__ || __APPLE__)

namespace {
bool unsupported(std::string* error) {
  if (error != nullptr) {
    *error = "mbspd sockets require a POSIX platform";
  }
  return false;
}
}  // namespace

bool read_frame(int, Frame*, std::size_t, bool, WireError* code,
                std::string* error, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  if (code != nullptr) *code = WireError::kInternal;
  return unsupported(error);
}

bool write_frame(int, FrameType, const std::string&, std::string* error) {
  return unsupported(error);
}

int unix_connect(const std::string&, std::string* error) {
  unsupported(error);
  return -1;
}

int unix_listen(const std::string&, int, std::string* error) {
  unsupported(error);
  return -1;
}

#endif

}  // namespace mbsp::daemon
