#pragma once
// Memoization of best-known schedules, keyed by the canonical identity of
// a scheduling scenario: (canonical DAG hash, canonical machine name,
// scheduler spec). The first two come for free from dag_canonical_hash
// (docs/FORMATS.md) and MachineRegistry canonicalization (docs/MACHINES.md);
// the scheduler spec is a deterministic fingerprint of the scheduler name
// plus every SchedulerOptions field that changes the produced plan —
// excluding the budget fields (budget_ms, max_iterations), which are the
// *effort* dimension:
//
//   * a request whose effort is within the cached entry's is an EXACT hit:
//     the cached plan is returned as-is, no solver runs. Because every
//     scheduler is deterministic given (instance, options), an equal-effort
//     hit is bitwise-identical to what a fresh solve would produce.
//   * a request with strictly more effort is a WARM hit: the caller
//     re-solves with the cached incumbent as warm start (never worse than
//     the incumbent, by the LNS contract) and re-inserts the improvement.
//
// Entries are LRU-evicted beyond a fixed capacity; every transition is
// counted (ScheduleCacheStats) and surfaced over the daemon's stats
// request. The cache is self-contained and socket-free so its semantics
// are unit-testable without a daemon (tests/test_schedule_cache.cpp).

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/runner/scheduler.hpp"
#include "src/twostage/compute_plan.hpp"

namespace mbsp::daemon {

struct ScheduleCacheKey {
  std::uint64_t dag_hash = 0;   ///< dag_canonical_hash of the instance DAG
  std::string machine;          ///< canonical machine name (Machine::name)
  std::string scheduler_spec;   ///< scheduler_cache_spec() fingerprint

  bool operator==(const ScheduleCacheKey&) const = default;
};

struct ScheduleCacheKeyHash {
  std::size_t operator()(const ScheduleCacheKey& key) const;
};

/// One cached incumbent: the plan, its cost, and the effort that produced
/// it (the budget dimension excluded from the key).
struct ScheduleCacheEntry {
  ComputePlan plan;
  double cost = 0;
  double baseline_cost = 0;
  double io_volume = 0;         ///< replayed verbatim on exact hits
  std::uint32_t supersteps = 0;
  double budget_ms = 0;        ///< 0 means unlimited (no wall-clock cap)
  std::int64_t max_iterations = 0;
};

struct ScheduleCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

enum class CacheHit { kMiss, kExact, kWarm };

/// The budget_ms = 0 convention means "no deadline": for effort
/// comparisons it is +infinity, not the smallest budget.
double effective_budget_ms(double budget_ms);

/// Deterministic fingerprint of (scheduler name, plan-affecting options),
/// budget fields excluded. Two requests with equal fingerprints and equal
/// effort produce bitwise-identical plans on the same instance.
std::string scheduler_cache_spec(const std::string& scheduler,
                                 const SchedulerOptions& options);

/// Cache key of an instance under a scheduler configuration: canonical
/// DAG hash + canonical machine name + options fingerprint. The hash
/// equals what `corpus hash` prints for the same DAG.
ScheduleCacheKey make_cache_key(const MbspInstance& inst,
                                const std::string& scheduler,
                                const SchedulerOptions& options);

class ScheduleCache {
 public:
  /// Capacity is an entry count (>= 1 enforced).
  explicit ScheduleCache(std::size_t capacity);

  /// Looks `key` up and classifies the hit against the requested effort:
  /// kExact when the request's effort is within the entry's (the entry is
  /// copied to *out and refreshed in LRU order), kWarm when the entry
  /// exists but the request asks for more effort (entry copied to *out as
  /// warm-start material), kMiss otherwise. Thread-safe.
  CacheHit lookup(const ScheduleCacheKey& key, double budget_ms,
                  std::int64_t max_iterations, ScheduleCacheEntry* out);

  /// Inserts or replaces the entry for `key` (front of the LRU order),
  /// evicting the least-recently-used entry beyond capacity.
  void insert(const ScheduleCacheKey& key, ScheduleCacheEntry entry);

  ScheduleCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<ScheduleCacheKey, ScheduleCacheEntry>>;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<ScheduleCacheKey, LruList::iterator,
                     ScheduleCacheKeyHash>
      index_;
  ScheduleCacheStats stats_;
};

}  // namespace mbsp::daemon
