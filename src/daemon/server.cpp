#include "src/daemon/server.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "src/daemon/socket_io.hpp"
#include "src/graph/dag_io.hpp"
#include "src/model/instance.hpp"
#include "src/model/machine_registry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define MBSP_DAEMON_POSIX 1
#endif

namespace mbsp::daemon {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Effort max under the budget_ms = 0 == unlimited convention.
double max_budget_ms(double a, double b) {
  if (a == 0 || b == 0) return 0;
  return std::max(a, b);
}

/// The schedulers that honor SchedulerOptions::warm_start_plan, i.e. can
/// warm-start from a cached incumbent.
bool is_warm_startable(const std::string& scheduler) {
  return scheduler == "lns" || scheduler == "lns-portfolio";
}

bool is_protocol_error(WireError code) {
  switch (code) {
    case WireError::kBadMagic:
    case WireError::kBadFrameType:
    case WireError::kOversizedFrame:
    case WireError::kTruncatedFrame:
    case WireError::kBadRequest:
    case WireError::kBadVersion:
      return true;
    default:
      return false;
  }
}

}  // namespace

MbspdServer::MbspdServer(MbspdOptions options,
                         const SchedulerRegistry& registry)
    : options_(std::move(options)),
      registry_(registry),
      cache_(options_.cache_capacity) {}

MbspdServer::~MbspdServer() { stop(); }

std::shared_ptr<const ComputeDag> MbspdServer::find_dag(std::uint64_t hash) {
  const std::lock_guard<std::mutex> lock(dag_mutex_);
  for (std::size_t i = 0; i < dag_store_.size(); ++i) {
    if (dag_store_[i].first == hash) {
      auto dag = dag_store_[i].second;
      dag_store_.erase(dag_store_.begin() + static_cast<long>(i));
      dag_store_.insert(dag_store_.begin(), {hash, dag});
      return dag;
    }
  }
  return nullptr;
}

void MbspdServer::store_dag(std::uint64_t hash,
                            std::shared_ptr<const ComputeDag> dag) {
  const std::lock_guard<std::mutex> lock(dag_mutex_);
  for (std::size_t i = 0; i < dag_store_.size(); ++i) {
    if (dag_store_[i].first == hash) {
      dag_store_.erase(dag_store_.begin() + static_cast<long>(i));
      break;
    }
  }
  dag_store_.insert(dag_store_.begin(), {hash, std::move(dag)});
  if (dag_store_.size() > options_.dag_store_capacity) {
    dag_store_.resize(options_.dag_store_capacity);
  }
}

DaemonStats MbspdServer::stats() const {
  const ScheduleCacheStats cache = cache_.stats();
  DaemonStats out;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    out.requests = requests_;
    out.solver_calls = solver_calls_;
    out.protocol_errors = protocol_errors_;
    out.repair_requests = repair_requests_;
    out.repair_hits = repair_hits_;
  }
  out.exact_hits = cache.exact_hits;
  out.warm_hits = cache.warm_hits;
  out.misses = cache.misses;
  out.insertions = cache.insertions;
  out.evictions = cache.evictions;
  out.cache_entries = cache_.size();
  out.cache_capacity = cache_.capacity();
  out.active_connections = active_connections_.load();
  return out;
}

#if defined(MBSP_DAEMON_POSIX)

bool MbspdServer::start(std::string* error) {
  if (running_.load()) return true;
  if (options_.socket_path.empty()) {
    if (error != nullptr) *error = "socket_path is required";
    return false;
  }
  if (::pipe(stop_pipe_) != 0) {
    if (error != nullptr) *error = "cannot create stop pipe";
    return false;
  }
  listen_fd_ = unix_listen(options_.socket_path, options_.backlog, error);
  if (listen_fd_ < 0) {
    ::close(stop_pipe_[0]);
    ::close(stop_pipe_[1]);
    stop_pipe_[0] = stop_pipe_[1] = -1;
    return false;
  }
  const std::size_t threads =
      options_.solver_threads != 0
          ? options_.solver_threads
          : std::max(1u, std::thread::hardware_concurrency());
  solver_pool_ = std::make_unique<ThreadPool>(threads);
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void MbspdServer::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // One byte, never drained: every poll()er sees POLLIN forever.
  const char byte = 1;
  (void)!::write(stop_pipe_[1], &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& conn : connections_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    connections_.clear();
  }
  if (solver_pool_ != nullptr) {
    solver_pool_->wait_idle();
    solver_pool_.reset();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::unlink(options_.socket_path.c_str());
}

void MbspdServer::reap_finished_connections() {
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void MbspdServer::accept_loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) continue;
    if (fds[1].revents != 0 || stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    reap_finished_connections();
    auto conn = std::make_unique<ConnThread>();
    ConnThread* raw = conn.get();
    active_connections_.fetch_add(1);
    {
      const std::lock_guard<std::mutex> lock(conn_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, fd, raw] {
      handle_connection(fd);
      ::close(fd);
      active_connections_.fetch_sub(1);
      raw->done.store(true);
    });
  }
}

bool MbspdServer::wait_readable(int fd) {
  pollfd fds[2] = {{fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
  if (::poll(fds, 2, -1) < 0) return false;
  // Data already buffered on the connection wins over a concurrent stop:
  // a request that raced the shutdown still gets an answer (possibly
  // kShuttingDown) instead of a silent hangup.
  if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) return true;
  return false;
}

bool MbspdServer::send_error(int fd, WireError code,
                             const std::string& message) {
  if (is_protocol_error(code)) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++protocol_errors_;
  }
  return write_frame(fd, FrameType::kError,
                     encode_error({code, message}), nullptr);
}

void MbspdServer::handle_connection(int fd) {
  while (true) {
    if (!wait_readable(fd)) return;
    Frame frame;
    WireError code;
    std::string error;
    bool clean_eof;
    if (!read_frame(fd, &frame, options_.max_request_bytes,
                    /*accept_responses=*/false, &code, &error, &clean_eof)) {
      if (!clean_eof) send_error(fd, code, error);
      return;  // framing is unrecoverable: close the connection
    }
    switch (frame.type) {
      case FrameType::kPing:
        if (!write_frame(fd, FrameType::kPong, "", nullptr)) return;
        break;
      case FrameType::kStatsRequest:
        if (!write_frame(fd, FrameType::kStatsReply, encode_stats(stats()),
                         nullptr)) {
          return;
        }
        break;
      case FrameType::kScheduleRequest:
        if (!handle_schedule(fd, frame.payload)) return;
        break;
      case FrameType::kRepairRequest:
        if (!handle_repair(fd, frame.payload)) return;
        break;
      default:
        send_error(fd, WireError::kBadFrameType, "unexpected frame type");
        return;
    }
  }
}

bool MbspdServer::handle_schedule(int fd, const std::string& payload) {
  const Clock::time_point received = Clock::now();
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++requests_;
  }
  ScheduleRequest request;
  std::string decode_err;
  if (!decode_schedule_request(payload, &request, &decode_err)) {
    // The frame boundary is intact, so the connection stays usable.
    return send_error(fd, WireError::kBadRequest, decode_err);
  }
  if (request.version != kProtocolVersion) {
    return send_error(fd, WireError::kBadVersion,
                      "protocol version " + std::to_string(request.version) +
                          " not supported (this daemon speaks " +
                          std::to_string(kProtocolVersion) + ")");
  }
  if (stopping_.load()) {
    return send_error(fd, WireError::kShuttingDown, "daemon is draining");
  }
  if (!write_frame(fd, FrameType::kStatus, encode_status("queued"), nullptr)) {
    return false;
  }

  // The solve runs on the pool (its queue is the admission queue); this
  // connection thread blocks until the reply is fully streamed. `alive`
  // reports whether the client is still there.
  std::promise<bool> done;
  std::future<bool> alive = done.get_future();
  solver_pool_->submit([this, fd, request = std::move(request), received,
                        &done]() mutable {
    bool ok = true;
    const auto fail = [&](WireError code, const std::string& message) {
      ok = send_error(fd, code, message);
    };
    const auto status = [&](const char* message) {
      ok = write_frame(fd, FrameType::kStatus, encode_status(message),
                       nullptr);
    };
    try {
      // Scheduler and machine resolve first: cheap, and their errors name
      // the offending token without touching the DAG.
      const MbspScheduler* scheduler = registry_.find(request.scheduler);
      if (scheduler == nullptr) {
        fail(WireError::kUnknownScheduler,
             "unknown scheduler '" + request.scheduler + "'");
        done.set_value(ok);
        return;
      }
      std::string machine_err;
      // Probe build at unit memory: canonical name only (machine names do
      // not depend on the memory scale, which needs the DAG).
      const auto probe = MachineRegistry::global().make_machine(
          request.machine_spec, 1.0, &machine_err);
      if (!probe) {
        fail(WireError::kBadMachineSpec, machine_err);
        done.set_value(ok);
        return;
      }

      SchedulerOptions opts;
      opts.budget_ms = request.budget_ms;
      opts.max_iterations = request.max_iterations;
      opts.seed = request.seed;
      opts.cost = request.cost_model == 0 ? CostModel::kSynchronous
                                          : CostModel::kAsynchronous;

      // Resolve the DAG: inline payload, or a pinned canonical hash that
      // may be answerable from the cache alone.
      std::shared_ptr<const ComputeDag> dag;
      std::uint64_t dag_hash = request.dag_hash;
      if (!request.dag_bytes.empty()) {
        std::string dag_err;
        auto parsed = dag_from_bytes(request.dag_bytes, &dag_err);
        if (!parsed) {
          fail(WireError::kBadDag, dag_err);
          done.set_value(ok);
          return;
        }
        auto owned = std::make_shared<ComputeDag>(std::move(*parsed));
        dag_hash = dag_canonical_hash(*owned);
        if (request.dag_hash != 0 && request.dag_hash != dag_hash) {
          fail(WireError::kBadDag,
               "inline DAG hashes to " + dag_hash_hex(dag_hash) +
                   " but the request pinned " +
                   dag_hash_hex(request.dag_hash));
          done.set_value(ok);
          return;
        }
        store_dag(dag_hash, owned);
        dag = std::move(owned);
      }

      ScheduleCacheKey key{dag_hash, probe->name,
                           scheduler_cache_spec(request.scheduler, opts)};
      ScheduleCacheEntry cached;
      CacheHit hit = CacheHit::kMiss;
      if (!request.no_cache) {
        hit = cache_.lookup(key, request.budget_ms, request.max_iterations,
                            &cached);
      }

      if (hit == CacheHit::kExact) {
        // Served in O(1): no solver invocation, bitwise-identical plan.
        status("cache-hit");
        if (ok) {
          ok = write_frame(fd, FrameType::kProgress,
                           encode_progress({1, cached.cost, 0}), nullptr);
        }
        FinalResult fin;
        fin.dag_hash = dag_hash;
        fin.machine = key.machine;
        fin.scheduler = request.scheduler;
        fin.cost_model = request.cost_model;
        fin.cache = CacheStatus::kExact;
        fin.cost = cached.cost;
        fin.baseline_cost = cached.baseline_cost;
        fin.io_volume = cached.io_volume;
        fin.supersteps = cached.supersteps;
        fin.plan = std::move(cached.plan);
        if (ok) {
          ok = write_frame(fd, FrameType::kFinal, encode_final_result(fin),
                           nullptr);
        }
        done.set_value(ok);
        return;
      }

      if (dag == nullptr) {
        dag = find_dag(dag_hash);
        if (dag == nullptr) {
          fail(WireError::kUnknownDagHash,
               "no resident DAG with hash " + dag_hash_hex(dag_hash) +
                   "; resend the request with the DAG inline");
          done.set_value(ok);
          return;
        }
      }

      // Per-request deadline: covers queue wait (we are past admission
      // here) and clamps the remaining solve budget.
      if (request.deadline_ms > 0) {
        const double elapsed = elapsed_ms_since(received);
        const double remaining = request.deadline_ms - elapsed;
        if (remaining <= 0) {
          fail(WireError::kDeadlineExpired,
               "deadline of " + std::to_string(request.deadline_ms) +
                   " ms expired after " + std::to_string(elapsed) +
                   " ms in the admission queue");
          done.set_value(ok);
          return;
        }
        opts.budget_ms = opts.budget_ms == 0
                             ? remaining
                             : std::min(opts.budget_ms, remaining);
      }

      const double r0 = min_memory_r0(*dag);
      auto machine = MachineRegistry::global().make_machine(
          request.machine_spec, r0, &machine_err);
      if (!machine) {
        fail(WireError::kBadMachineSpec, machine_err);
        done.set_value(ok);
        return;
      }
      const MbspInstance inst{*dag, std::move(*machine)};
      if (!scheduler->supports(inst)) {
        fail(WireError::kBadRequest,
             "scheduler '" + request.scheduler +
                 "' does not support this instance");
        done.set_value(ok);
        return;
      }

      const bool warm =
          hit == CacheHit::kWarm && is_warm_startable(request.scheduler);
      if (warm) opts.warm_start_plan = &cached.plan;
      status(warm ? "warm-start" : "solving");

      ScheduleResult result = scheduler->run(inst, opts);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++solver_calls_;
      }
      long long iterations = 0;
      for (long p : result.lns_proposed) iterations += p;

      if (ok) {
        ok = write_frame(fd, FrameType::kProgress,
                         encode_progress({0, result.baseline_cost, 0}),
                         nullptr);
      }
      if (ok) {
        ok = write_frame(fd, FrameType::kProgress,
                         encode_progress({1, result.cost, iterations}),
                         nullptr);
      }

      FinalResult fin;
      fin.dag_hash = dag_hash;
      fin.machine = key.machine;
      fin.scheduler = request.scheduler;
      fin.cost_model = request.cost_model;
      fin.cache = warm ? CacheStatus::kWarm : CacheStatus::kCold;
      fin.cost = result.cost;
      fin.baseline_cost = result.baseline_cost;
      fin.io_volume = result.io_volume;
      fin.supersteps = static_cast<std::uint32_t>(result.supersteps);
      fin.plan = result.plan;

      // Memoize even when the client is gone: the work is done either
      // way, and the next identical request becomes an exact hit.
      if (!request.no_cache) {
        ScheduleCacheEntry entry;
        entry.plan = std::move(result.plan);
        entry.cost = result.cost;
        entry.baseline_cost = result.baseline_cost;
        entry.io_volume = result.io_volume;
        entry.supersteps = static_cast<std::uint32_t>(result.supersteps);
        entry.budget_ms = warm ? max_budget_ms(cached.budget_ms,
                                               opts.budget_ms)
                               : opts.budget_ms;
        entry.max_iterations =
            warm ? std::max<std::int64_t>(cached.max_iterations,
                                          request.max_iterations)
                 : request.max_iterations;
        cache_.insert(key, std::move(entry));
      }

      if (ok) {
        ok = write_frame(fd, FrameType::kFinal, encode_final_result(fin),
                         nullptr);
      }
      done.set_value(ok);
    } catch (const std::exception& e) {
      fail(WireError::kInternal, std::string("internal error: ") + e.what());
      done.set_value(ok);
    } catch (...) {
      fail(WireError::kInternal, "internal error");
      done.set_value(ok);
    }
  });
  return alive.get();
}

bool MbspdServer::handle_repair(int fd, const std::string& payload) {
  const Clock::time_point received = Clock::now();
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++requests_;
    ++repair_requests_;
  }
  RepairRequest request;
  std::string decode_err;
  if (!decode_repair_request(payload, &request, &decode_err)) {
    // A structurally intact payload with a semantically bad delta (unknown
    // op kind) is the client's delta at fault, not the framing.
    const bool bad_delta =
        decode_err.find("bad delta op kind") != std::string::npos;
    return send_error(
        fd, bad_delta ? WireError::kBadDelta : WireError::kBadRequest,
        decode_err);
  }
  if (request.version != kProtocolVersion) {
    return send_error(fd, WireError::kBadVersion,
                      "protocol version " + std::to_string(request.version) +
                          " not supported (this daemon speaks " +
                          std::to_string(kProtocolVersion) + ")");
  }
  if (stopping_.load()) {
    return send_error(fd, WireError::kShuttingDown, "daemon is draining");
  }
  if (!write_frame(fd, FrameType::kStatus, encode_status("queued"), nullptr)) {
    return false;
  }

  std::promise<bool> done;
  std::future<bool> alive = done.get_future();
  solver_pool_->submit([this, fd, request = std::move(request), received,
                        &done]() mutable {
    bool ok = true;
    const auto fail = [&](WireError code, const std::string& message) {
      ok = send_error(fd, code, message);
    };
    const auto status = [&](const char* message) {
      ok = write_frame(fd, FrameType::kStatus, encode_status(message),
                       nullptr);
    };
    try {
      const MbspScheduler* scheduler = registry_.find(request.scheduler);
      if (scheduler == nullptr) {
        fail(WireError::kUnknownScheduler,
             "unknown scheduler '" + request.scheduler + "'");
        done.set_value(ok);
        return;
      }
      const MbspScheduler* repairer = registry_.find("repair");
      if (repairer == nullptr) {
        fail(WireError::kInternal,
             "this daemon's registry has no 'repair' scheduler");
        done.set_value(ok);
        return;
      }
      std::string machine_err;
      const auto probe = MachineRegistry::global().make_machine(
          request.machine_spec, 1.0, &machine_err);
      if (!probe) {
        fail(WireError::kBadMachineSpec, machine_err);
        done.set_value(ok);
        return;
      }

      SchedulerOptions opts;
      opts.budget_ms = request.budget_ms;
      opts.max_iterations = request.max_iterations;
      opts.seed = request.seed;
      opts.cost = request.cost_model == 0 ? CostModel::kSynchronous
                                          : CostModel::kAsynchronous;

      // The BASE dag is always required: the mutated scenario's identity
      // (its canonical hash and machine name) only exists after the delta
      // has been applied to it.
      std::shared_ptr<const ComputeDag> dag;
      std::uint64_t dag_hash = request.dag_hash;
      if (!request.dag_bytes.empty()) {
        std::string dag_err;
        auto parsed = dag_from_bytes(request.dag_bytes, &dag_err);
        if (!parsed) {
          fail(WireError::kBadDag, dag_err);
          done.set_value(ok);
          return;
        }
        auto owned = std::make_shared<ComputeDag>(std::move(*parsed));
        dag_hash = dag_canonical_hash(*owned);
        if (request.dag_hash != 0 && request.dag_hash != dag_hash) {
          fail(WireError::kBadDag,
               "inline DAG hashes to " + dag_hash_hex(dag_hash) +
                   " but the request pinned " +
                   dag_hash_hex(request.dag_hash));
          done.set_value(ok);
          return;
        }
        store_dag(dag_hash, owned);
        dag = std::move(owned);
      } else {
        dag = find_dag(dag_hash);
        if (dag == nullptr) {
          fail(WireError::kUnknownDagHash,
               "no resident DAG with hash " + dag_hash_hex(dag_hash) +
                   "; resend the request with the DAG inline");
          done.set_value(ok);
          return;
        }
      }

      if (request.deadline_ms > 0) {
        const double elapsed = elapsed_ms_since(received);
        const double remaining = request.deadline_ms - elapsed;
        if (remaining <= 0) {
          fail(WireError::kDeadlineExpired,
               "deadline of " + std::to_string(request.deadline_ms) +
                   " ms expired after " + std::to_string(elapsed) +
                   " ms in the admission queue");
          done.set_value(ok);
          return;
        }
        opts.budget_ms = opts.budget_ms == 0
                             ? remaining
                             : std::min(opts.budget_ms, remaining);
      }

      // Mutated scenario: the machine is built at the BASE dag's r0 — the
      // machine the incumbent was solved on — and the delta then mutates
      // both dag and machine (docs/REPAIR.md: repair never silently
      // re-scales memory under the incumbent).
      const double r0 = min_memory_r0(*dag);
      auto machine = MachineRegistry::global().make_machine(
          request.machine_spec, r0, &machine_err);
      if (!machine) {
        fail(WireError::kBadMachineSpec, machine_err);
        done.set_value(ok);
        return;
      }
      MbspInstance mutated{*dag, std::move(*machine)};
      std::string apply_err;
      if (!apply_instance_delta(mutated, request.delta, nullptr, &apply_err)) {
        fail(WireError::kBadDelta, apply_err);
        done.set_value(ok);
        return;
      }
      const std::uint64_t mutated_hash = dag_canonical_hash(mutated.dag);

      // The repaired result is memoized under the MUTATED scenario with a
      // "repair+" spec prefix: repeat REPAIRs exact-hit it, while plain
      // SCHEDULE requests for the mutated dag keep their own bitwise
      // solve-equality contract untouched.
      ScheduleCacheKey mutated_key{
          mutated_hash, mutated.arch.name,
          scheduler_cache_spec("repair+" + request.scheduler, opts)};
      if (!request.no_cache) {
        ScheduleCacheEntry repeat;
        if (cache_.lookup(mutated_key, request.budget_ms,
                          request.max_iterations,
                          &repeat) == CacheHit::kExact) {
          status("cache-hit");
          if (ok) {
            ok = write_frame(fd, FrameType::kProgress,
                             encode_progress({1, repeat.cost, 0}), nullptr);
          }
          FinalResult fin;
          fin.dag_hash = mutated_hash;
          fin.machine = mutated_key.machine;
          fin.scheduler = request.scheduler;
          fin.cost_model = request.cost_model;
          fin.cache = CacheStatus::kExact;
          fin.cost = repeat.cost;
          fin.baseline_cost = repeat.baseline_cost;
          fin.io_volume = repeat.io_volume;
          fin.supersteps = repeat.supersteps;
          fin.plan = std::move(repeat.plan);
          if (ok) {
            ok = write_frame(fd, FrameType::kFinal, encode_final_result(fin),
                             nullptr);
          }
          done.set_value(ok);
          return;
        }
      }

      // Incumbent lookup under the BASE scenario's own key: any cached
      // entry (exact or lower-effort) is a usable pre-delta plan.
      ScheduleCacheKey base_key{dag_hash, probe->name,
                                scheduler_cache_spec(request.scheduler, opts)};
      ScheduleCacheEntry incumbent;
      bool have_incumbent = false;
      if (!request.no_cache) {
        have_incumbent = cache_.lookup(base_key, request.budget_ms,
                                       request.max_iterations,
                                       &incumbent) != CacheHit::kMiss;
        if (!have_incumbent) {
          // Chained repair: the pinned base may itself be a repaired
          // scenario, memoized under the repair+ spec prefix. Its plan
          // is a valid incumbent for the base DAG all the same.
          const ScheduleCacheKey chained_key{
              dag_hash, probe->name,
              scheduler_cache_spec("repair+" + request.scheduler, opts)};
          have_incumbent = cache_.lookup(chained_key, request.budget_ms,
                                         request.max_iterations,
                                         &incumbent) != CacheHit::kMiss;
        }
      }

      ScheduleResult result;
      if (have_incumbent) {
        status("repairing");
        opts.warm_start_plan = &incumbent.plan;
        opts.repair_delta = &request.delta;
        result = repairer->run(mutated, opts);
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++solver_calls_;
        ++repair_hits_;
      } else {
        if (!scheduler->supports(mutated)) {
          fail(WireError::kBadRequest,
               "scheduler '" + request.scheduler +
                   "' does not support the mutated instance");
          done.set_value(ok);
          return;
        }
        status("solving");
        result = scheduler->run(mutated, opts);
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++solver_calls_;
      }
      long long iterations = 0;
      for (long p : result.lns_proposed) iterations += p;

      if (ok) {
        ok = write_frame(fd, FrameType::kProgress,
                         encode_progress({0, result.baseline_cost, 0}),
                         nullptr);
      }
      if (ok) {
        ok = write_frame(fd, FrameType::kProgress,
                         encode_progress({1, result.cost, iterations}),
                         nullptr);
      }

      FinalResult fin;
      fin.dag_hash = mutated_hash;
      fin.machine = mutated_key.machine;
      fin.scheduler = request.scheduler;
      fin.cost_model = request.cost_model;
      fin.cache =
          have_incumbent ? CacheStatus::kRepaired : CacheStatus::kCold;
      fin.cost = result.cost;
      fin.baseline_cost = result.baseline_cost;
      fin.io_volume = result.io_volume;
      fin.supersteps = static_cast<std::uint32_t>(result.supersteps);
      fin.plan = result.plan;

      if (!request.no_cache) {
        // Keep the mutated dag resident so follow-up requests can pin its
        // hash (e.g. using the repaired scenario as the next repair base).
        store_dag(mutated_hash,
                  std::make_shared<ComputeDag>(mutated.dag));
        ScheduleCacheEntry entry;
        entry.plan = std::move(result.plan);
        entry.cost = result.cost;
        entry.baseline_cost = result.baseline_cost;
        entry.io_volume = result.io_volume;
        entry.supersteps = static_cast<std::uint32_t>(result.supersteps);
        entry.budget_ms = opts.budget_ms;
        entry.max_iterations = request.max_iterations;
        cache_.insert(mutated_key, std::move(entry));
      }

      if (ok) {
        ok = write_frame(fd, FrameType::kFinal, encode_final_result(fin),
                         nullptr);
      }
      done.set_value(ok);
    } catch (const std::exception& e) {
      fail(WireError::kInternal, std::string("internal error: ") + e.what());
      done.set_value(ok);
    } catch (...) {
      fail(WireError::kInternal, "internal error");
      done.set_value(ok);
    }
  });
  return alive.get();
}

#else  // !MBSP_DAEMON_POSIX

bool MbspdServer::start(std::string* error) {
  if (error != nullptr) *error = "mbspd requires a POSIX platform";
  return false;
}

void MbspdServer::stop() {}
void MbspdServer::accept_loop() {}
void MbspdServer::reap_finished_connections() {}
void MbspdServer::handle_connection(int) {}
bool MbspdServer::handle_schedule(int, const std::string&) { return false; }
bool MbspdServer::handle_repair(int, const std::string&) { return false; }
bool MbspdServer::send_error(int, WireError, const std::string&) {
  return false;
}
bool MbspdServer::wait_readable(int) { return false; }

#endif

}  // namespace mbsp::daemon
