#include "src/daemon/schedule_cache.hpp"

#include <cstdio>
#include <limits>
#include <utility>

#include "src/graph/dag_io.hpp"

namespace mbsp::daemon {

namespace {

/// Shortest round-trip-safe rendering, so textually equal options always
/// fingerprint equally.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::size_t ScheduleCacheKeyHash::operator()(
    const ScheduleCacheKey& key) const {
  std::uint64_t h = key.dag_hash;
  h = fnv1a_64(key.machine.data(), key.machine.size(), h ^ kFnvOffset);
  h = fnv1a_64(key.scheduler_spec.data(), key.scheduler_spec.size(), h);
  return static_cast<std::size_t>(h);
}

double effective_budget_ms(double budget_ms) {
  return budget_ms == 0 ? std::numeric_limits<double>::infinity() : budget_ms;
}

std::string scheduler_cache_spec(const std::string& scheduler,
                                 const SchedulerOptions& options) {
  std::string spec = scheduler;
  spec += options.cost == CostModel::kSynchronous ? "|cost=sync"
                                                  : "|cost=async";
  spec += "|rec=" + std::to_string(options.allow_recompute ? 1 : 0);
  spec += "|seed=" + std::to_string(options.seed);
  spec += "|warm=" + std::to_string(static_cast<int>(options.warm_start));
  spec += "|s1=" + num(options.stage1_budget_ms);
  spec += "|cold=" + std::to_string(options.cold_start ? 1 : 0);
  spec += "|moves=" + std::to_string(options.move_mask);
  spec +=
      "|policy=" + std::to_string(static_cast<int>(options.completion_policy));
  spec += "|dc=" + std::to_string(options.divide_conquer_threshold);
  spec += "|part=" + std::to_string(options.max_part_size);
  spec += "|shards=" + std::to_string(options.shards);
  spec += "|cmp=" + std::to_string(options.compare_full_seed ? 1 : 0);
  spec += "|workers=" + std::to_string(options.workers);
  spec += "|epochs=" + std::to_string(options.epochs);
  spec += "|profile=" +
          std::to_string(static_cast<int>(options.portfolio_profile));
  spec += "|free=" + std::to_string(options.free_running ? 1 : 0);
  return spec;
}

ScheduleCacheKey make_cache_key(const MbspInstance& inst,
                                const std::string& scheduler,
                                const SchedulerOptions& options) {
  return {dag_canonical_hash(inst.dag), inst.arch.name,
          scheduler_cache_spec(scheduler, options)};
}

ScheduleCache::ScheduleCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

CacheHit ScheduleCache::lookup(const ScheduleCacheKey& key, double budget_ms,
                               std::int64_t max_iterations,
                               ScheduleCacheEntry* out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return CacheHit::kMiss;
  }
  const ScheduleCacheEntry& entry = it->second->second;
  const bool within =
      effective_budget_ms(budget_ms) <=
          effective_budget_ms(entry.budget_ms) &&
      max_iterations <= entry.max_iterations;
  if (out != nullptr) *out = entry;
  if (within) {
    ++stats_.exact_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    return CacheHit::kExact;
  }
  ++stats_.warm_hits;
  return CacheHit::kWarm;
}

void ScheduleCache::insert(const ScheduleCacheKey& key,
                           ScheduleCacheEntry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.insertions;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

ScheduleCacheStats ScheduleCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScheduleCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace mbsp::daemon
