#pragma once
// Client library for the mbspd daemon: a thin, blocking wrapper over the
// wire protocol (protocol.hpp / socket_io.hpp) reused by the mbsp-client
// CLI, the daemon tests, and the bench_daemon load generator. One client
// holds one connection and issues one request at a time; the daemon
// serves concurrent clients, so parallelism is "one client per thread".

#include <optional>
#include <string>
#include <vector>

#include "src/daemon/protocol.hpp"

namespace mbsp::daemon {

class MbspClient {
 public:
  MbspClient() = default;
  ~MbspClient() { close(); }

  MbspClient(const MbspClient&) = delete;
  MbspClient& operator=(const MbspClient&) = delete;

  bool connect(const std::string& socket_path, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Round-trips a ping frame (liveness probe; CI uses it to wait for the
  /// daemon to come up).
  bool ping(std::string* error = nullptr);

  /// Fetches the daemon counters.
  bool stats(DaemonStats* out, std::string* error = nullptr);

  /// Everything a schedule request streamed back, in arrival order.
  struct Outcome {
    bool ok = false;  ///< final frame received (else `error` is set)
    FinalResult final;
    std::vector<std::string> statuses;
    std::vector<ProgressFrame> progress;
    ErrorFrame error;  ///< daemon-side typed error when !ok
  };

  /// Sends one schedule request and consumes the reply stream until the
  /// final or error frame. Returns false only on transport/decode
  /// failure (daemon gone, garbage bytes); a daemon-side *typed* error is
  /// returned as outcome->ok == false with outcome->error filled.
  bool run(const ScheduleRequest& request, Outcome* outcome,
           std::string* error = nullptr);

  /// Sends one REPAIR request (docs/REPAIR.md) and consumes the reply
  /// stream exactly like run(). outcome->final.cache tells how the plan
  /// was obtained: kRepaired (incumbent patched + polished), kCold (no
  /// incumbent; mutated instance solved from scratch) or kExact (repeat
  /// repair served from the cache).
  bool repair(const RepairRequest& request, Outcome* outcome,
              std::string* error = nullptr);

  /// Low-level single-frame read (tests drive protocol edges with it).
  bool read_reply(Frame* frame, std::string* error = nullptr);

  /// Low-level raw send (tests use it to inject malformed bytes).
  bool send_raw(const std::string& bytes, std::string* error = nullptr);

 private:
  /// Shared reply-stream pump of run()/repair(): status / progress frames
  /// accumulate until a final or typed-error frame ends the request.
  bool consume_reply_stream(Outcome* outcome, std::string* error);

  int fd_ = -1;
};

}  // namespace mbsp::daemon
