#include "src/daemon/protocol.hpp"

#include <cstring>

namespace mbsp::daemon {

namespace {

void append_le(std::string& out, std::uint64_t v, std::size_t bytes) {
  for (std::size_t i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t load_le(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

bool is_request_frame(FrameType type) {
  return type == FrameType::kScheduleRequest ||
         type == FrameType::kStatsRequest || type == FrameType::kPing ||
         type == FrameType::kRepairRequest;
}

const char* wire_error_name(WireError code) {
  switch (code) {
    case WireError::kNone: return "none";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadFrameType: return "bad-frame-type";
    case WireError::kOversizedFrame: return "oversized-frame";
    case WireError::kTruncatedFrame: return "truncated-frame";
    case WireError::kBadRequest: return "bad-request";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kUnknownScheduler: return "unknown-scheduler";
    case WireError::kBadMachineSpec: return "bad-machine-spec";
    case WireError::kBadDag: return "bad-dag";
    case WireError::kUnknownDagHash: return "unknown-dag-hash";
    case WireError::kDeadlineExpired: return "deadline-expired";
    case WireError::kShuttingDown: return "shutting-down";
    case WireError::kInternal: return "internal";
    case WireError::kBadDelta: return "bad-delta";
  }
  return "unknown";
}

const char* cache_status_name(CacheStatus status) {
  switch (status) {
    case CacheStatus::kCold: return "cold";
    case CacheStatus::kExact: return "exact";
    case CacheStatus::kWarm: return "warm";
    case CacheStatus::kRepaired: return "repaired";
  }
  return "unknown";
}

std::string encode_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kFrameMagic, sizeof kFrameMagic);
  out.push_back(static_cast<char>(type));
  append_le(out, payload.size(), 4);
  out.append(payload);
  return out;
}

// ---------------------------------------------------------------------------
// WireWriter

void WireWriter::u8(std::uint8_t v) { append_le(out_, v, 1); }
void WireWriter::u16(std::uint16_t v) { append_le(out_, v, 2); }
void WireWriter::u32(std::uint32_t v) { append_le(out_, v, 4); }
void WireWriter::u64(std::uint64_t v) { append_le(out_, v, 8); }
void WireWriter::i64(std::int64_t v) {
  append_le(out_, static_cast<std::uint64_t>(v), 8);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  append_le(out_, bits, 8);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void WireWriter::blob(const std::string& s) {
  u64(s.size());
  out_.append(s);
}

// ---------------------------------------------------------------------------
// WireReader

void WireReader::fail(const char* what, std::size_t need) {
  if (!error_.empty()) return;
  error_ = "truncated " + std::string(what) + " at byte " +
           std::to_string(offset_) + " (need " + std::to_string(need) +
           ", have " + std::to_string(size_ - offset_) + ")";
}

bool WireReader::take(const char* what, std::size_t n, const void** out) {
  if (!error_.empty()) return false;
  if (size_ - offset_ < n) {
    fail(what, n);
    return false;
  }
  *out = data_ + offset_;
  offset_ += n;
  return true;
}

bool WireReader::u8(std::uint8_t* v) {
  const void* p;
  if (!take("u8", 1, &p)) return false;
  *v = static_cast<std::uint8_t>(load_le(p, 1));
  return true;
}

bool WireReader::u16(std::uint16_t* v) {
  const void* p;
  if (!take("u16", 2, &p)) return false;
  *v = static_cast<std::uint16_t>(load_le(p, 2));
  return true;
}

bool WireReader::u32(std::uint32_t* v) {
  const void* p;
  if (!take("u32", 4, &p)) return false;
  *v = static_cast<std::uint32_t>(load_le(p, 4));
  return true;
}

bool WireReader::u64(std::uint64_t* v) {
  const void* p;
  if (!take("u64", 8, &p)) return false;
  *v = load_le(p, 8);
  return true;
}

bool WireReader::i64(std::int64_t* v) {
  std::uint64_t u;
  if (!u64(&u)) return false;
  *v = static_cast<std::int64_t>(u);
  return true;
}

bool WireReader::f64(double* v) {
  std::uint64_t bits;
  if (!u64(&bits)) return false;
  std::memcpy(v, &bits, sizeof *v);
  return true;
}

bool WireReader::str(std::string* v, const char* what) {
  std::uint32_t len;
  const std::size_t at = offset_;
  if (!u32(&len)) return false;
  const void* p;
  if (size_ - offset_ < len) {
    error_ = "truncated " + std::string(what) + " at byte " +
             std::to_string(at) + " (declared " + std::to_string(len) +
             " bytes, have " + std::to_string(size_ - offset_) + ")";
    return false;
  }
  take(what, len, &p);
  v->assign(static_cast<const char*>(p), len);
  return true;
}

bool WireReader::blob(std::string* v, const char* what) {
  std::uint64_t len;
  const std::size_t at = offset_;
  if (!u64(&len)) return false;
  const void* p;
  if (size_ - offset_ < len) {
    error_ = "truncated " + std::string(what) + " at byte " +
             std::to_string(at) + " (declared " + std::to_string(len) +
             " bytes, have " + std::to_string(size_ - offset_) + ")";
    return false;
  }
  take(what, static_cast<std::size_t>(len), &p);
  v->assign(static_cast<const char*>(p), static_cast<std::size_t>(len));
  return true;
}

bool WireReader::expect_end() {
  if (!error_.empty()) return false;
  if (offset_ != size_) {
    error_ = "trailing garbage at byte " + std::to_string(offset_) + " (" +
             std::to_string(size_ - offset_) + " bytes past the payload)";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// ScheduleRequest

std::string encode_schedule_request(const ScheduleRequest& request) {
  WireWriter w;
  w.u8(request.version);
  w.u8(request.no_cache ? 1 : 0);
  w.u64(request.dag_hash);
  w.blob(request.dag_bytes);
  w.str(request.machine_spec);
  w.str(request.scheduler);
  w.u8(request.cost_model);
  w.f64(request.budget_ms);
  w.i64(request.max_iterations);
  w.u64(request.seed);
  w.f64(request.deadline_ms);
  return w.take();
}

bool decode_schedule_request(const std::string& payload,
                             ScheduleRequest* request, std::string* error) {
  WireReader r(payload);
  std::uint8_t no_cache = 0;
  r.u8(&request->version);
  r.u8(&no_cache);
  r.u64(&request->dag_hash);
  r.blob(&request->dag_bytes, "inline dag payload");
  r.str(&request->machine_spec, "machine spec");
  r.str(&request->scheduler, "scheduler name");
  r.u8(&request->cost_model);
  r.f64(&request->budget_ms);
  r.i64(&request->max_iterations);
  r.u64(&request->seed);
  r.f64(&request->deadline_ms);
  if (!r.expect_end()) {
    if (error != nullptr) *error = "schedule request: " + r.error();
    return false;
  }
  request->no_cache = no_cache != 0;
  return true;
}

// ---------------------------------------------------------------------------
// InstanceDelta and RepairRequest

void encode_instance_delta(WireWriter& w, const InstanceDelta& delta) {
  w.u32(static_cast<std::uint32_t>(delta.ops.size()));
  for (const InstanceDeltaOp& op : delta.ops) {
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.i64(op.u);
    w.i64(op.v);
    w.f64(op.omega);
    w.f64(op.mu);
    w.i64(op.proc);
    w.f64(op.capacity);
  }
}

bool decode_instance_delta(WireReader& r, InstanceDelta* delta) {
  std::uint32_t count = 0;
  if (!r.u32(&count)) return false;
  delta->ops.clear();
  delta->ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    InstanceDeltaOp op;
    std::uint8_t kind = 0;
    std::int64_t u = 0, v = 0, proc = 0;
    if (!r.u8(&kind) || !r.i64(&u) || !r.i64(&v) || !r.f64(&op.omega) ||
        !r.f64(&op.mu) || !r.i64(&proc) || !r.f64(&op.capacity)) {
      return false;
    }
    // Semantic check the reader can't express: callers distinguish this
    // from truncation by r.ok() staying true.
    if (kind > static_cast<std::uint8_t>(InstanceDeltaOpKind::kShrinkMemory)) {
      return false;
    }
    op.kind = static_cast<InstanceDeltaOpKind>(kind);
    op.u = static_cast<NodeId>(u);
    op.v = static_cast<NodeId>(v);
    op.proc = static_cast<int>(proc);
    delta->ops.push_back(op);
  }
  return true;
}

std::string encode_repair_request(const RepairRequest& request) {
  WireWriter w;
  w.u8(request.version);
  w.u8(request.no_cache ? 1 : 0);
  w.u64(request.dag_hash);
  w.blob(request.dag_bytes);
  w.str(request.machine_spec);
  w.str(request.scheduler);
  w.u8(request.cost_model);
  w.f64(request.budget_ms);
  w.i64(request.max_iterations);
  w.u64(request.seed);
  w.f64(request.deadline_ms);
  encode_instance_delta(w, request.delta);
  return w.take();
}

bool decode_repair_request(const std::string& payload, RepairRequest* request,
                           std::string* error) {
  WireReader r(payload);
  std::uint8_t no_cache = 0;
  r.u8(&request->version);
  r.u8(&no_cache);
  r.u64(&request->dag_hash);
  r.blob(&request->dag_bytes, "inline dag payload");
  r.str(&request->machine_spec, "machine spec");
  r.str(&request->scheduler, "scheduler name");
  r.u8(&request->cost_model);
  r.f64(&request->budget_ms);
  r.i64(&request->max_iterations);
  r.u64(&request->seed);
  r.f64(&request->deadline_ms);
  const bool delta_ok = decode_instance_delta(r, &request->delta);
  if (!delta_ok || !r.expect_end()) {
    if (error != nullptr) {
      *error = "repair request: " +
               (r.ok() ? "bad delta op kind" : r.error());
    }
    return false;
  }
  request->no_cache = no_cache != 0;
  return true;
}

// ---------------------------------------------------------------------------
// Plans and FinalResult

void encode_plan(WireWriter& w, const ComputePlan& plan) {
  w.u32(static_cast<std::uint32_t>(plan.num_procs));
  for (const auto& seq : plan.seq) {
    w.u64(seq.size());
    for (const PlannedCompute& pc : seq) {
      w.u32(pc.node);
      w.u32(static_cast<std::uint32_t>(pc.superstep));
    }
  }
}

bool decode_plan(WireReader& r, ComputePlan* plan) {
  std::uint32_t num_procs;
  if (!r.u32(&num_procs)) return false;
  plan->num_procs = static_cast<int>(num_procs);
  plan->seq.assign(num_procs, {});
  for (std::uint32_t p = 0; p < num_procs; ++p) {
    std::uint64_t count;
    if (!r.u64(&count)) return false;
    plan->seq[p].reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint32_t node, superstep;
      if (!r.u32(&node) || !r.u32(&superstep)) return false;
      plan->seq[p].push_back(
          {static_cast<NodeId>(node), static_cast<int>(superstep)});
    }
  }
  return true;
}

std::string encode_final_result(const FinalResult& result) {
  WireWriter w;
  w.u64(result.dag_hash);
  w.str(result.machine);
  w.str(result.scheduler);
  w.u8(result.cost_model);
  w.u8(static_cast<std::uint8_t>(result.cache));
  w.f64(result.cost);
  w.f64(result.baseline_cost);
  w.f64(result.io_volume);
  w.u32(result.supersteps);
  encode_plan(w, result.plan);
  return w.take();
}

bool decode_final_result(const std::string& payload, FinalResult* result,
                         std::string* error) {
  WireReader r(payload);
  std::uint8_t cache = 0;
  r.u64(&result->dag_hash);
  r.str(&result->machine, "machine name");
  r.str(&result->scheduler, "scheduler name");
  r.u8(&result->cost_model);
  r.u8(&cache);
  r.f64(&result->cost);
  r.f64(&result->baseline_cost);
  r.f64(&result->io_volume);
  r.u32(&result->supersteps);
  decode_plan(r, &result->plan);
  if (!r.expect_end()) {
    if (error != nullptr) *error = "final result: " + r.error();
    return false;
  }
  result->cache = static_cast<CacheStatus>(cache);
  return true;
}

// ---------------------------------------------------------------------------
// Progress / status / error / stats

std::string encode_progress(const ProgressFrame& progress) {
  WireWriter w;
  w.u8(progress.stage);
  w.f64(progress.cost);
  w.i64(progress.iterations);
  return w.take();
}

bool decode_progress(const std::string& payload, ProgressFrame* progress,
                     std::string* error) {
  WireReader r(payload);
  r.u8(&progress->stage);
  r.f64(&progress->cost);
  r.i64(&progress->iterations);
  if (!r.expect_end()) {
    if (error != nullptr) *error = "progress frame: " + r.error();
    return false;
  }
  return true;
}

std::string encode_status(const std::string& message) {
  WireWriter w;
  w.str(message);
  return w.take();
}

bool decode_status(const std::string& payload, std::string* message,
                   std::string* error) {
  WireReader r(payload);
  r.str(message, "status message");
  if (!r.expect_end()) {
    if (error != nullptr) *error = "status frame: " + r.error();
    return false;
  }
  return true;
}

std::string encode_error(const ErrorFrame& err) {
  WireWriter w;
  w.u16(static_cast<std::uint16_t>(err.code));
  w.str(err.message);
  return w.take();
}

bool decode_error(const std::string& payload, ErrorFrame* err,
                  std::string* error) {
  WireReader r(payload);
  std::uint16_t code = 0;
  r.u16(&code);
  r.str(&err->message, "error message");
  if (!r.expect_end()) {
    if (error != nullptr) *error = "error frame: " + r.error();
    return false;
  }
  err->code = static_cast<WireError>(code);
  return true;
}

std::string encode_stats(const DaemonStats& stats) {
  WireWriter w;
  w.u64(stats.requests);
  w.u64(stats.exact_hits);
  w.u64(stats.warm_hits);
  w.u64(stats.misses);
  w.u64(stats.insertions);
  w.u64(stats.evictions);
  w.u64(stats.solver_calls);
  w.u64(stats.protocol_errors);
  w.u64(stats.cache_entries);
  w.u64(stats.cache_capacity);
  w.u64(stats.active_connections);
  w.u64(stats.repair_requests);
  w.u64(stats.repair_hits);
  return w.take();
}

bool decode_stats(const std::string& payload, DaemonStats* stats,
                  std::string* error) {
  WireReader r(payload);
  r.u64(&stats->requests);
  r.u64(&stats->exact_hits);
  r.u64(&stats->warm_hits);
  r.u64(&stats->misses);
  r.u64(&stats->insertions);
  r.u64(&stats->evictions);
  r.u64(&stats->solver_calls);
  r.u64(&stats->protocol_errors);
  r.u64(&stats->cache_entries);
  r.u64(&stats->cache_capacity);
  r.u64(&stats->active_connections);
  r.u64(&stats->repair_requests);
  r.u64(&stats->repair_hits);
  if (!r.expect_end()) {
    if (error != nullptr) *error = "stats frame: " + r.error();
    return false;
  }
  return true;
}

}  // namespace mbsp::daemon
